// Parameter sweeps to CSV: the plot-making workflow. Sweeps the injection
// crossbar speedup and emits one CSV row per (point, scheme, benchmark) —
// pipe into your plotting tool of choice.
//
//   ./sweep_csv [--jobs N] [--no-cache] [--cache-dir D] > speedup_sweep.csv
//
// The grid runs in parallel on the exec pool (deterministic: the CSV is
// byte-identical for any --jobs value) and caches results on disk, so a
// re-run only simulates cells whose configuration changed.
#include <algorithm>
#include <cstdio>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "exec/options.hpp"

using namespace arinoc;

int main(int argc, char** argv) {
  const exec::ExecOptions opts = exec::require_exec_flags(argc, argv);
  const Config base = make_base_config();
  const std::string err = base.validate();
  if (!err.empty()) {
    std::fprintf(stderr, "invalid base configuration: %s\n", err.c_str());
    return 2;
  }
  std::vector<SweepPoint> points;
  for (std::uint32_t s = 1; s <= 4; ++s) {
    points.push_back({"S=" + std::to_string(s), [s](Config& c) {
                        c.injection_speedup = std::min(s, c.num_vcs);
                      }});
  }
  const auto cells = Sweep(base)
                         .over(points)
                         .schemes({Scheme::kAdaARI})
                         .benchmarks({"bfs", "kmeans", "hotspot"})
                         .jobs(opts.jobs)
                         .cache(opts.cache_enabled, opts.cache_dir)
                         .progress(opts.progress)
                         .run();
  std::fputs(Sweep::to_csv(cells).c_str(), stdout);
  for (const auto& c : cells) {
    if (!c.ok()) return 1;  // Per-cell errors are in the CSV's error column.
  }
  return 0;
}
