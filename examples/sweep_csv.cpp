// Parameter sweeps to CSV: the plot-making workflow. Sweeps the injection
// crossbar speedup and emits one CSV row per (point, scheme, benchmark) —
// pipe into your plotting tool of choice.
//
//   ./sweep_csv > speedup_sweep.csv
#include <algorithm>
#include <cstdio>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

using namespace arinoc;

int main() {
  const Config base = make_base_config();
  const std::string err = base.validate();
  if (!err.empty()) {
    std::fprintf(stderr, "invalid base configuration: %s\n", err.c_str());
    return 2;
  }
  std::vector<SweepPoint> points;
  for (std::uint32_t s = 1; s <= 4; ++s) {
    points.push_back({"S=" + std::to_string(s), [s](Config& c) {
                        c.injection_speedup = std::min(s, c.num_vcs);
                      }});
  }
  const auto cells = Sweep(base)
                         .over(points)
                         .schemes({Scheme::kAdaARI})
                         .benchmarks({"bfs", "kmeans", "hotspot"})
                         .run();
  std::fputs(Sweep::to_csv(cells).c_str(), stdout);
  return 0;
}
