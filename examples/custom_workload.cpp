// Defining a custom workload: build BenchmarkTraits by hand (as a user
// would for their own application's traffic signature), sweep its memory
// intensity, and watch the reply-injection bottleneck appear — then check
// how much of it ARI recovers.
//
//   ./custom_workload
#include <cstdio>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"

using namespace arinoc;

namespace {

Metrics run_traits(const Config& base, Scheme scheme,
                   const BenchmarkTraits& traits) {
  Config cfg = apply_scheme(base, scheme);
  GpgpuSim sim(cfg, traits);
  sim.run_with_warmup();
  return sim.collect();
}

}  // namespace

int main() {
  Config base = make_base_config();

  // A synthetic "graph-analytics-like" application: irregular (poorly
  // coalesced), read-dominated, large working set, little reuse.
  BenchmarkTraits app;
  app.name = "my-graph-app";
  app.sensitivity = Sensitivity::kHigh;
  app.store_frac = 0.08;
  app.locality = 0.18;
  app.stream_frac = 0.2;
  app.shared_frac = 0.35;
  app.lines_mean = 2.8;
  app.working_set_kb = 1024;

  std::printf("sweeping memory intensity of a custom workload\n\n");
  TextTable t({"mem_ratio", "base IPC", "ARI IPC", "gain", "base MC stall",
               "ARI MC stall", "reply inj util (base)"});
  for (double ratio : {0.05, 0.15, 0.25, 0.35, 0.45}) {
    app.mem_ratio = ratio;
    const Metrics b = run_traits(base, Scheme::kAdaBaseline, app);
    const Metrics a = run_traits(base, Scheme::kAdaARI, app);
    t.add_row({fmt(ratio, 2), fmt(b.ipc, 3), fmt(a.ipc, 3),
               fmt(a.ipc / b.ipc, 3) + "x", std::to_string(b.mc_stall_cycles),
               std::to_string(a.mc_stall_cycles),
               fmt(b.reply_injection_util, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "reading the table: as memory intensity grows, the baseline's reply\n"
      "injection link saturates (util -> ~1), MC stalls explode, and the\n"
      "ARI gain widens — the paper's core claim on a workload you define.\n");
  return 0;
}
