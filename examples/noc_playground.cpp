// Driving the NoC library standalone (no GPU cores, no DRAM): synthetic
// few-to-many traffic from 8 "MC" injectors into 28 sinks, the pattern
// that creates the reply-injection bottleneck. Compares the four NI
// architectures at increasing offered load and prints the accepted
// throughput and latency — a BookSim-style experiment using arinoc::noc
// directly.
//
//   ./noc_playground
#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/report.hpp"
#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "noc/topology.hpp"

using namespace arinoc;

namespace {

class NullSink : public PacketSink {
 public:
  void deliver(const Packet&, Cycle) override { ++count; }
  std::uint64_t count = 0;
};

struct Result {
  double throughput;  // Delivered packets/cycle.
  double latency;
};

Result run(NiArch arch, double offered_load, std::uint32_t speedup) {
  Mesh mesh(6, 6, 8);
  NetworkParams np;
  np.routing = RoutingAlgo::kMinAdaptive;
  np.treat_mcs_specially = true;
  np.mc_injection_speedup = speedup;
  np.mc_injection_ports = arch == NiArch::kMultiPort ? 2 : 1;
  Network net(np, &mesh);

  Config cfg;  // For NI construction parameters only.
  NullSink sink;
  std::vector<std::unique_ptr<InjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  for (NodeId mc : mesh.mc_nodes()) {
    nis.push_back(make_inject_ni(arch, &net, mc, cfg));
  }
  for (NodeId cc : mesh.cc_nodes()) {
    ejs.push_back(std::make_unique<EjectNi>(&net, cc, &sink));
  }

  Xoshiro256 rng(7);
  const Cycle cycles = 4000;
  for (Cycle t = 0; t < cycles; ++t) {
    for (std::size_t i = 0; i < nis.size(); ++i) {
      if (!rng.chance(offered_load)) continue;
      const NodeId dst =
          mesh.cc_nodes()[rng.next_below(mesh.cc_nodes().size())];
      const PacketType type = rng.chance(0.9) ? PacketType::kReadReply
                                              : PacketType::kWriteReply;
      const PacketId id =
          net.make_packet(type, mesh.mc_nodes()[i], dst, 0, 0, t);
      if (!nis[i]->try_accept(id, t)) net.abandon_packet(id);
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
  }
  return {static_cast<double>(sink.count) / cycles,
          net.stats().mean_latency_all()};
}

}  // namespace

int main() {
  std::printf("few-to-many reply traffic: 8 injectors -> 28 sinks, "
              "6x6 mesh, adaptive routing\n");
  std::printf("offered load = reply packets per MC per cycle "
              "(~0.2 pkt/cycle saturates one narrow injection link)\n\n");
  struct Setup {
    const char* name;
    NiArch arch;
    std::uint32_t speedup;
  };
  const Setup setups[] = {
      {"Baseline NI (narrow MC->NI)", NiArch::kBaseline, 1},
      {"Enhanced NI (wide MC->NI)", NiArch::kEnhanced, 1},
      {"MultiPort [3] (2 inj ports)", NiArch::kMultiPort, 1},
      {"ARI (split queues + S=4)", NiArch::kSplitQueue, 4},
  };
  for (double load : {0.1, 0.2, 0.4, 0.6}) {
    std::printf("--- offered load %.1f pkt/MC/cycle ---\n", load);
    TextTable t({"NI architecture", "delivered pkt/cycle", "mean latency"});
    for (const Setup& s : setups) {
      const Result r = run(s.arch, load, s.speedup);
      t.add_row({s.name, fmt(r.throughput, 3), fmt(r.latency, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("reading the tables: all four keep up at low load; as load\n"
              "crosses the narrow-injection capacity, only ARI keeps\n"
              "accepting traffic (supply AND consumption accelerated).\n");
  return 0;
}
