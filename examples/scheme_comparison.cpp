// Scheme comparison on a user-selected benchmark mix: runs all five
// evaluated schemes (paper §6.2) plus the Fig.-10 ablations and prints a
// compact report — the programmatic equivalent of skimming Figs. 10-13.
//
//   ./scheme_comparison [bench1 bench2 ...]
//
// Default mix: one benchmark per NoC-sensitivity class.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/suite.hpp"

using namespace arinoc;

int main(int argc, char** argv) {
  std::vector<std::string> benches;
  for (int i = 1; i < argc; ++i) {
    if (find_benchmark(argv[i]) == nullptr) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", argv[i]);
      return 1;
    }
    benches.push_back(argv[i]);
  }
  if (benches.empty()) benches = quick_benchmarks();

  const Config base = make_base_config();
  const std::vector<Scheme> schemes = {
      Scheme::kXYBaseline,   Scheme::kXYARI,      Scheme::kAdaBaseline,
      Scheme::kAdaMultiPort, Scheme::kAccSupply,  Scheme::kAccConsume,
      Scheme::kAccBothNoPrio, Scheme::kAdaARI};

  for (const auto& b : benches) {
    const BenchmarkTraits* traits = find_benchmark(b);
    std::printf("=== %s (%s NoC sensitivity, mem ratio %.2f) ===\n",
                b.c_str(), sensitivity_name(traits->sensitivity),
                traits->mem_ratio);
    TextTable t({"scheme", "IPC", "vs XY-Base", "MC stall", "req lat",
                 "reply lat"});
    double ref_ipc = 0.0;
    for (Scheme s : schemes) {
      const Metrics m = run_scheme(base, s, b);
      if (s == Scheme::kXYBaseline) ref_ipc = m.ipc;
      t.add_row({scheme_name(s), fmt(m.ipc, 3),
                 fmt(ref_ipc > 0 ? m.ipc / ref_ipc : 1.0, 3) + "x",
                 std::to_string(m.mc_stall_cycles),
                 fmt(m.request_latency, 1), fmt(m.reply_latency, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
