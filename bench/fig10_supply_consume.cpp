// Figure 10: accelerating injection supply and consumption separately and
// combined (all with adaptive routing).
// Paper: Acc-Supply alone is ~neutral and *hurts* 12/30 benchmarks;
// Acc-Consume alone is minimal; both together +13.5% (geomean); adding
// the binary priority yields further gains (ARI).
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner(
      "Figure 10 — Acc-Supply / Acc-Consume ablation (adaptive routing)",
      "supply-only ~1.0x (hurts some), consume-only ~1.0x, both ~1.135x, "
      "both+priority higher still");
  const Config base = make_base_config();
  const std::vector<Scheme> schemes = {
      Scheme::kAdaBaseline, Scheme::kAccSupply, Scheme::kAccConsume,
      Scheme::kAccBothNoPrio, Scheme::kAdaARI};
  const auto geos = bench::run_and_print_normalized(
      base, schemes, all_benchmark_names(), bench::ipc_of, "IPC");
  std::printf("geomeans: supply-only %.3f, consume-only %.3f, both %.3f, "
              "ARI %.3f\n",
              geos[1], geos[2], geos[3], geos[4]);
  return 0;
}
