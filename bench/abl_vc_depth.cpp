// Ablation: VC buffer depth (packets per VC). Deeper buffers add storage,
// not injection throughput — the same lesson as Fig. 6's queue-capacity
// sweep: the baseline's bottleneck is the injection *rate*, so extra VC
// depth barely helps it, while ARI converts the same buffers into
// throughput.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — VC depth (packets per VC)",
                "buffering is not bandwidth: deeper VCs barely help the "
                "baseline");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "mummergpu", "srad"};

  TextTable t({"depth(pkts)", "scheme", "bfs", "mummergpu", "srad"});
  for (std::uint32_t depth = 1; depth <= 3; ++depth) {
    for (Scheme s : {Scheme::kAdaBaseline, Scheme::kAdaARI}) {
      std::vector<std::string> row = {std::to_string(depth), scheme_name(s)};
      for (const auto& b : benches) {
        const double ref =
            run_scheme(base, Scheme::kAdaBaseline, b).ipc;  // depth 1.
        const double v = run_scheme(base, s, b, [&](Config& c) {
                           c.vc_depth_pkts = depth;
                         }).ipc;
        row.push_back(fmt(v / ref, 3));
      }
      t.add_row(row);
    }
  }
  std::printf("IPC normalized to Ada-Baseline at depth 1\n%s\n",
              t.to_string().c_str());
  return 0;
}
