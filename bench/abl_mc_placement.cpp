// Ablation: memory-controller placement (diamond vs top/bottom edge vs
// clustered column). Table I uses the diamond placement "to make a
// competitive baseline" (Abts et al. ISCA'09); this ablation shows why —
// and that ARI helps on top of any placement.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — MC placement (diamond / top-bottom / column)",
                "diamond is the competitive baseline; ARI composes with "
                "every placement");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "mummergpu", "srad",
                                            "hotspot"};
  const McPlacement placements[] = {
      McPlacement::kDiamond, McPlacement::kTopBottom, McPlacement::kColumn};

  for (const auto& b : benches) {
    TextTable t({"placement", "Ada-Baseline IPC", "Ada-ARI IPC", "ARI gain"});
    for (McPlacement p : placements) {
      auto placed = [p](Config& c) { c.mc_placement = p; };
      const double base_ipc =
          run_scheme(base, Scheme::kAdaBaseline, b, placed).ipc;
      const double ari_ipc = run_scheme(base, Scheme::kAdaARI, b, placed).ipc;
      t.add_row({placement_name(p), fmt(base_ipc, 3), fmt(ari_ipc, 3),
                 fmt(ari_ipc / base_ipc, 3) + "x"});
    }
    std::printf("%s\n%s\n", b.c_str(), t.to_string().c_str());
  }
  return 0;
}
