// Ablation: starvation threshold sensitivity (§5).
// Paper: "starvation of this kind is rare, and the overall performance is
// very insensitive to the threshold value" (1k cycles used).
#include <map>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — starvation threshold sensitivity (§5)",
                "performance insensitive to the threshold (1k default)");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "mummergpu", "kmeans"};
  const std::vector<Cycle> thresholds = {100, 500, 1000, 4000, 16000};

  std::vector<std::string> headers = {"threshold"};
  for (const auto& b : benches) headers.push_back(b);
  TextTable t(headers);

  std::map<std::string, double> ref;
  for (const auto& b : benches) {
    ref[b] = run_scheme(base, Scheme::kAdaARI, b).ipc;  // Default 1000.
  }
  for (Cycle th : thresholds) {
    std::vector<std::string> row = {std::to_string(th)};
    for (const auto& b : benches) {
      const Metrics m = run_scheme(base, Scheme::kAdaARI, b,
                                   [&](Config& c) {
                                     c.starvation_threshold = th;
                                   });
      row.push_back(fmt(m.ipc / ref[b], 3));
    }
    t.add_row(row);
  }
  std::printf("IPC normalized to the 1k-cycle default\n%s\n",
              t.to_string().c_str());
  std::printf("shape check: all entries ~1.00 (insensitive).\n");
  return 0;
}
