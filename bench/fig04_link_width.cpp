// Figure 4: impact of widening request vs reply network links.
// Paper: 256-bit request links buy +0.8% IPC; 256-bit reply links +25.6%.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 4 — Impact of link widths (128-128 / 256-128 / 128-256)",
                "widening the request net: +0.8% IPC; widening the reply "
                "net: +25.6% IPC");
  const Config base = make_base_config();

  TextTable t({"benchmark", "128-128", "256-128", "128-256"});
  std::vector<double> g256req, g128rep;
  for (const auto& b : all_benchmark_names()) {
    const Metrics m0 = run_scheme(base, Scheme::kXYBaseline, b);
    const Metrics mr = run_scheme(base, Scheme::kXYBaseline, b,
                                  [](Config& c) {
                                    c.link_width_bits_request = 256;
                                  });
    const Metrics mp = run_scheme(base, Scheme::kXYBaseline, b,
                                  [](Config& c) {
                                    c.link_width_bits_reply = 256;
                                  });
    g256req.push_back(mr.ipc / m0.ipc);
    g128rep.push_back(mp.ipc / m0.ipc);
    t.add_row({b, "1.000", fmt(mr.ipc / m0.ipc, 3), fmt(mp.ipc / m0.ipc, 3)});
  }
  t.add_row({"GEOMEAN", "1.000", fmt(geomean(g256req), 3),
             fmt(geomean(g128rep), 3)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("shape check: 256-128 ~ 1.0x (useless), 128-256 >> 256-128 —\n"
              "the reply network is the limiting factor.\n");
  return 0;
}
