#include "bench_util.hpp"

#include <sstream>

#include "exec/runner.hpp"
#include "obs/regress/provenance.hpp"
#include "obs/regress/trend.hpp"

namespace arinoc::bench {

std::vector<Metrics> run_grid(const Config& base,
                              const std::vector<Scheme>& schemes,
                              const std::vector<std::string>& benchmarks,
                              const exec::ExecOptions& opts) {
  std::vector<exec::CellSpec> cells;
  cells.reserve(schemes.size() * benchmarks.size());
  for (const Scheme s : schemes) {
    for (const auto& b : benchmarks) {
      cells.push_back({"grid", s, b, nullptr, false});
    }
  }
  exec::ExperimentRunner runner(base, opts);
  const auto ran = runner.run(cells);

  std::vector<Metrics> out;
  out.reserve(ran.size());
  for (const auto& r : ran) {
    if (!r.ok()) {
      std::fprintf(stderr, "!! %s/%s failed (%s): %s\n", r.scheme.c_str(),
                   r.benchmark.c_str(), r.error_kind.c_str(),
                   r.error.c_str());
    }
    out.push_back(r.metrics);
  }
  return out;
}

std::vector<double> run_and_print_normalized(
    const Config& base, const std::vector<Scheme>& schemes,
    const std::vector<std::string>& benchmarks, MetricFn fn,
    const char* metric_name, bool higher_is_better,
    const exec::ExecOptions& opts) {
  // Run the whole grid up front (parallel, cache-aware), then render.
  const std::vector<Metrics> grid = run_grid(base, schemes, benchmarks, opts);
  auto value_of = [&](std::size_t s, std::size_t b) {
    return fn(grid[s * benchmarks.size() + b]);
  };

  std::vector<std::string> headers = {"benchmark"};
  for (Scheme s : schemes) headers.push_back(scheme_name(s));
  TextTable table(headers);

  std::vector<std::vector<double>> ratios(schemes.size());
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    std::vector<std::string> row = {benchmarks[b]};
    const double baseline = value_of(0, b);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double r = baseline != 0.0 ? value_of(s, b) / baseline : 0.0;
      ratios[s].push_back(r);
      row.push_back(fmt(r, 3));
    }
    table.add_row(row);
  }
  std::vector<std::string> geo_row = {"GEOMEAN"};
  std::vector<double> geos;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const double g = geomean_guarded(ratios[s]);  // Guards zeroed cells.
    geos.push_back(g);
    geo_row.push_back(fmt(g, 3));
  }
  table.add_row(geo_row);

  std::printf("%s (normalized to %s, %s)\n", metric_name,
              scheme_name(schemes[0]),
              higher_is_better ? "higher is better" : "lower is better");
  std::printf("%s\n", table.to_string().c_str());
  return geos;
}

std::vector<SweepPoint> fabric_axis_points() {
  const auto grid_4x4 = [](Config& c) {
    c.mesh_width = c.mesh_height = 4;
    c.num_mcs = 4;
  };
  return {
      {"mesh", [grid_4x4](Config& c) {
         grid_4x4(c);
         c.fabric = "mesh";
       }},
      {"torus", [grid_4x4](Config& c) {
         grid_4x4(c);
         c.fabric = "torus";
       }},
      {"cmesh", [](Config& c) {
         c.fabric = "cmesh";
         c.mesh_width = c.mesh_height = 2;
         c.cmesh_concentration = 4;
         c.num_mcs = 2;
       }},
      {"chiplet", [](Config& c) {
         c.fabric = "chiplet";
         c.mesh_width = c.mesh_height = 2;
         c.chiplets_x = c.chiplets_y = 2;
         c.num_mcs = 4;
       }},
  };
}

std::string bench_json_stamp(const char* kind, const Config& base) {
  obs::regress::Provenance p = obs::regress::collect_provenance();
  p.config_hash = obs::regress::config_hash_hex(base);
  p.seed = base.seed;
  std::ostringstream os;
  os << "  \"schema\": \"" << obs::regress::kBenchSchema << "\",\n"
     << "  \"kind\": \"" << kind << "\",\n"
     << "  \"provenance\": " << obs::regress::provenance_json(p) << ",\n";
  return os.str();
}

bool apply_fabric(const std::string& fabric, Config& c) {
  for (const SweepPoint& p : fabric_axis_points()) {
    if (p.label == fabric) {
      p.tweak(c);
      return true;
    }
  }
  std::fprintf(stderr, "unknown fabric '%s' (want mesh|torus|cmesh|chiplet)\n",
               fabric.c_str());
  return false;
}

}  // namespace arinoc::bench
