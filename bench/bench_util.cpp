#include "bench_util.hpp"

namespace arinoc::bench {

std::vector<double> run_and_print_normalized(
    const Config& base, const std::vector<Scheme>& schemes,
    const std::vector<std::string>& benchmarks, MetricFn fn,
    const char* metric_name, bool higher_is_better) {
  // Run everything first.
  std::map<int, std::vector<double>> values;  // scheme index -> per-bench.
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (const auto& b : benchmarks) {
      const Metrics m = run_scheme(base, schemes[s], b);
      values[static_cast<int>(s)].push_back(fn(m));
    }
  }

  std::vector<std::string> headers = {"benchmark"};
  for (Scheme s : schemes) headers.push_back(scheme_name(s));
  TextTable table(headers);

  std::vector<std::vector<double>> ratios(schemes.size());
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    std::vector<std::string> row = {benchmarks[b]};
    const double baseline = values[0][b];
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double r = baseline != 0.0 ? values[static_cast<int>(s)][b] /
                                             baseline
                                       : 0.0;
      ratios[s].push_back(r > 0.0 ? r : 1e-6);
      row.push_back(fmt(r, 3));
    }
    table.add_row(row);
  }
  std::vector<std::string> geo_row = {"GEOMEAN"};
  std::vector<double> geos;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const double g = geomean(ratios[s]);
    geos.push_back(g);
    geo_row.push_back(fmt(g, 3));
  }
  table.add_row(geo_row);

  std::printf("%s (normalized to %s, %s)\n", metric_name,
              scheme_name(schemes[0]),
              higher_is_better ? "higher is better" : "lower is better");
  std::printf("%s\n", table.to_string().c_str());
  return geos;
}

}  // namespace arinoc::bench
