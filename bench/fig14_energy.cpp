// Figure 14: energy consumption, ARI vs baseline.
// Paper: dynamic energy ~unchanged; static energy falls with the shorter
// execution time; total ~-4% on average.
//
// Because our simulator measures fixed-cycle windows (not fixed work), the
// energy comparison is done per unit of work: energy / warp instruction.
// A fixed program would finish in time inversely proportional to IPC, so
// static-energy-per-instruction = static_power * cycles / instructions.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 14 — Normalized energy (per unit of work)",
                "dynamic ~equal, static falls with runtime, total ~-4%");
  const Config base = make_base_config();

  TextTable t({"benchmark", "dyn ratio", "static ratio", "total ratio"});
  std::vector<double> totals;
  for (const auto& b : all_benchmark_names()) {
    const Metrics m0 = run_scheme(base, Scheme::kAdaBaseline, b);
    const Metrics m1 = run_scheme(base, Scheme::kAdaARI, b);
    const double w0 = static_cast<double>(m0.warp_instructions);
    const double w1 = static_cast<double>(m1.warp_instructions);
    const double dyn = (m1.energy.dynamic_nj() / w1) /
                       (m0.energy.dynamic_nj() / w0);
    const double stat = (m1.energy.static_nj / w1) /
                        (m0.energy.static_nj / w0);
    const double total = (m1.energy.total_nj() / w1) /
                         (m0.energy.total_nj() / w0);
    totals.push_back(total);
    t.add_row({b, fmt(dyn, 3), fmt(stat, 3), fmt(total, 3)});
  }
  t.add_row({"GEOMEAN", "", "", fmt(geomean(totals), 3)});
  std::printf("energy per warp instruction, Ada-ARI / Ada-Baseline "
              "(lower is better)\n%s\n",
              t.to_string().c_str());
  std::printf("paper: total ~0.96x; static ratio ~ 1/IPC-speedup\n");
  return 0;
}
