// Negative control: apply ARI's mechanisms to the *request* side as well
// (split CC NIs + CC-router injection speedup). The paper's diagnosis says
// the bottleneck is the reply injection point, so request-side ARI should
// buy ~nothing on top of (a) the baseline and (b) reply-side ARI — the
// same logic as Fig. 4's request-link-widening result, applied to the
// mechanism itself.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Negative control — ARI applied to the request side",
                "request-side ARI alone ~1.0x; adds ~nothing on top of "
                "reply-side ARI");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "mummergpu", "srad",
                                            "kmeans", "hotspot", "nn"};

  TextTable t({"benchmark", "Ada-Baseline", "+req-side ARI only",
               "Ada-ARI (reply)", "Ada-ARI + req-side"});
  std::vector<double> req_only, reply_only, both;
  for (const auto& b : benches) {
    const double v0 = run_scheme(base, Scheme::kAdaBaseline, b).ipc;
    const double v1 = run_scheme(base, Scheme::kAdaBaseline, b,
                                 [](Config& c) {
                                   c.request_side_ari = true;
                                 }).ipc;
    const double v2 = run_scheme(base, Scheme::kAdaARI, b).ipc;
    const double v3 = run_scheme(base, Scheme::kAdaARI, b, [](Config& c) {
                        c.request_side_ari = true;
                      }).ipc;
    req_only.push_back(v1 / v0);
    reply_only.push_back(v2 / v0);
    both.push_back(v3 / v0);
    t.add_row({b, "1.000", fmt(v1 / v0, 3), fmt(v2 / v0, 3),
               fmt(v3 / v0, 3)});
  }
  t.add_row({"GEOMEAN", "1.000", fmt(geomean(req_only), 3),
             fmt(geomean(reply_only), 3), fmt(geomean(both), 3)});
  std::printf("IPC normalized to Ada-Baseline\n%s\n", t.to_string().c_str());
  std::printf("shape check: column 2 ~ 1.0 and column 4 ~ column 3 — only\n"
              "the reply side matters, confirming the paper's diagnosis.\n");
  return 0;
}
