// Figure 6: NI injection-queue occupancy vs queue capacity.
// Paper: occupancy closely tracks capacity from 4 to 80 long packets —
// proof that the injection point is the bottleneck (any extra buffering
// immediately fills with waiting reply packets).
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 6 — NI injection queue occupancy vs capacity",
                "occupancy tracks capacity from 4 to 80 packets "
                "(pathfinder, hotspot, srad, bfs)");
  const Config base = make_base_config();
  const std::vector<std::uint32_t> capacities = {4, 8, 16, 32, 48, 64, 80};

  std::vector<std::string> headers = {"capacity(pkts)"};
  for (const auto& b : fig6_benchmarks()) headers.push_back(b);
  TextTable t(headers);

  for (std::uint32_t cap : capacities) {
    std::vector<std::string> row = {std::to_string(cap)};
    for (const auto& b : fig6_benchmarks()) {
      const Metrics m = run_scheme(
          base, Scheme::kXYBaseline, b, [&](Config& c) {
            c.ni_queue_flits = cap * c.reply_long_flits();
          });
      row.push_back(fmt(m.ni_occupancy_pkts, 1));
    }
    t.add_row(row);
  }
  std::printf("mean reply-NI occupancy in packets\n%s\n",
              t.to_string().c_str());
  std::printf("shape check: for NoC-bound benchmarks the occupancy column\n"
              "rises with capacity (queues fill no matter how large).\n");
  return 0;
}
