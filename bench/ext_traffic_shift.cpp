// Extension experiment (paper §2.2 future work): techniques outside the
// NoC shift the traffic the NoC sees — cache bypassing (MRPB-like)
// increases it, inter-warp request coalescing (WarpPool-like) reduces it.
// The paper approximates this with its high/medium/low sensitivity mix;
// here we apply the shifts directly and measure how ARI's benefit moves.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Extension — ARI under shifted NoC traffic intensity",
                "more traffic (L1 bypass / no inter-warp merge) => larger "
                "ARI benefit; less traffic => smaller");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "srad", "hotspot", "nn"};

  struct Mode {
    const char* name;
    bool bypass;
    bool merge;
  };
  const Mode modes[] = {
      {"default (L1 + merge)", false, true},
      {"no inter-warp merge", false, false},
      {"L1 bypass", true, true},
      {"L1 bypass + no merge", true, false},
  };

  for (const auto& b : benches) {
    TextTable t({"traffic mode", "Ada-Baseline IPC", "Ada-ARI IPC",
                 "ARI gain", "reply inj util (base)"});
    for (const Mode& mode : modes) {
      auto tweak = [&](Config& c) {
        c.l1_bypass = mode.bypass;
        c.cross_warp_merge = mode.merge;
      };
      const Metrics m0 = run_scheme(base, Scheme::kAdaBaseline, b, tweak);
      const Metrics m1 = run_scheme(base, Scheme::kAdaARI, b, tweak);
      t.add_row({mode.name, fmt(m0.ipc, 3), fmt(m1.ipc, 3),
                 fmt(m1.ipc / m0.ipc, 3) + "x",
                 fmt(m0.reply_injection_util, 3)});
    }
    std::printf("%s\n%s\n", b.c_str(), t.to_string().c_str());
  }
  return 0;
}
