// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace arinoc::bench {

/// Prints the standard figure banner: what the paper reports, what this
/// binary regenerates.
inline void banner(const char* figure, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

/// One metric extracted per (scheme, benchmark) run.
using MetricFn = double (*)(const Metrics&);

inline double ipc_of(const Metrics& m) { return m.ipc; }
inline double mc_stall_of(const Metrics& m) {
  return static_cast<double>(m.mc_stall_cycles);
}

/// Runs `schemes` x `benchmarks` and prints a table of `fn` normalized to
/// the first scheme, with a geomean row. Returns the per-scheme geomeans
/// (same order as `schemes`).
std::vector<double> run_and_print_normalized(
    const Config& base, const std::vector<Scheme>& schemes,
    const std::vector<std::string>& benchmarks, MetricFn fn,
    const char* metric_name, bool higher_is_better = true);

}  // namespace arinoc::bench
