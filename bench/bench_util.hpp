// Shared helpers for the figure-reproduction bench binaries.
//
// Thread-safety: every helper here is reentrant — all state is local, the
// grid execution goes through exec::ExperimentRunner (which owns its pool),
// and stdio calls are the C library's locked ones. Calling these from exec
// pool workers is safe.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "exec/options.hpp"

namespace arinoc::bench {

/// Prints the standard figure banner: what the paper reports, what this
/// binary regenerates.
inline void banner(const char* figure, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

/// One metric extracted per (scheme, benchmark) run.
using MetricFn = double (*)(const Metrics&);

inline double ipc_of(const Metrics& m) { return m.ipc; }
inline double mc_stall_of(const Metrics& m) {
  return static_cast<double>(m.mc_stall_cycles);
}

/// Runs `schemes` x `benchmarks` (in parallel on the exec pool, optionally
/// cached) and prints a table of `fn` normalized to the first scheme, with
/// a geomean row. Returns the per-scheme geomeans (same order as
/// `schemes`). A cell that fails is reported on stderr and contributes a
/// guarded (floor-clamped) ratio instead of aborting the bench.
std::vector<double> run_and_print_normalized(
    const Config& base, const std::vector<Scheme>& schemes,
    const std::vector<std::string>& benchmarks, MetricFn fn,
    const char* metric_name, bool higher_is_better = true,
    const exec::ExecOptions& opts = exec::options_from_env(true));

/// Runs a (scheme x benchmark) grid on the exec pool and returns the
/// metrics in grid order (scheme-major). Failed cells are reported on
/// stderr and come back zeroed.
std::vector<Metrics> run_grid(const Config& base,
                              const std::vector<Scheme>& schemes,
                              const std::vector<std::string>& benchmarks,
                              const exec::ExecOptions& opts =
                                  exec::options_from_env(true));

/// The shared fabric axis (mesh / torus / cmesh / chiplet): every point
/// keeps 16 routers / 4 MCs so cross-fabric comparisons are about topology,
/// not scale. cmesh concentrates the same endpoint count onto a 2x2 hub
/// mesh; chiplet splits the 4x4 grid into four 2x2 dies with serdes on the
/// die boundaries. Used by ext_fabric_sweep and the --fabric flag of
/// ext_fault_resilience / ext_serving_tail, so all three benches run the
/// identical fabric configurations.
std::vector<SweepPoint> fabric_axis_points();

/// Applies one named fabric-axis point to `c`. Returns false (after
/// printing the known names to stderr) on an unknown fabric name.
bool apply_fabric(const std::string& fabric, Config& c);

/// Leading members for a stamped BENCH_*.json document — schema
/// ("arinoc-bench-v1"), bench kind, and a full provenance block hashed over
/// `base` — indented two spaces and ending with ",\n", ready to emit
/// directly after the opening "{\n". Every bench JSON artifact carries this
/// stamp so the trend ingester (tools/arinoc_regress) can reject foreign or
/// stale files instead of silently trending them.
std::string bench_json_stamp(const char* kind, const Config& base);

}  // namespace arinoc::bench
