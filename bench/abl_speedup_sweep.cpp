// Ablation (beyond the paper's figures): injection-port crossbar speedup
// sweep S = 1..4, validating the Eq. (1)/(2) sizing guideline of §4.2 —
// gains should saturate at the recommended S.
#include "bench_util.hpp"
#include "core/scheme.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — injection speedup sweep (S = 1..4)",
                "Eq.(1)/(2): gains saturate near S = min(N_out, N_vc) = 4");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "kmeans", "mummergpu",
                                            "hotspot"};

  std::vector<std::string> headers = {"S"};
  for (const auto& b : benches) headers.push_back(b);
  TextTable t(headers);

  std::map<std::string, double> ref;
  for (const auto& b : benches) {
    ref[b] = run_scheme(base, Scheme::kAdaBaseline, b).ipc;
  }
  for (std::uint32_t s = 1; s <= 4; ++s) {
    std::vector<std::string> row = {std::to_string(s)};
    for (const auto& b : benches) {
      const Metrics m = run_scheme(base, Scheme::kAdaARI, b,
                                   [&](Config& c) {
                                     c.injection_speedup = s;
                                   });
      row.push_back(fmt(m.ipc / ref[b], 3));
    }
    t.add_row(row);
  }
  std::printf("IPC normalized to Ada-Baseline\n%s\n", t.to_string().c_str());

  // The guideline itself, evaluated for the Table-I reply mix.
  const double long_flits = 5.0;
  const double mean_flits = mean_reply_flits(0.9, 5);
  std::printf("guideline: mean reply flits = %.2f; for InjRate 0.8 pkt/cyc "
              "Eq.(1) wants S >= %u; Eq.(2) caps at %u; recommended %u\n",
              mean_flits, min_speedup_eq1(0.8, mean_flits),
              max_speedup_eq2(4, 4),
              recommended_speedup(0.8, mean_flits, 4, 4));
  (void)long_flits;
  return 0;
}
