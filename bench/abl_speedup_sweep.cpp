// Ablation (beyond the paper's figures): injection-port crossbar speedup
// sweep S = 1..4, validating the Eq. (1)/(2) sizing guideline of §4.2 —
// gains should saturate at the recommended S.
#include "bench_util.hpp"
#include "core/scheme.hpp"
#include "exec/runner.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace arinoc;
  const exec::ExecOptions opts = exec::require_exec_flags(argc, argv);
  bench::banner("Ablation — injection speedup sweep (S = 1..4)",
                "Eq.(1)/(2): gains saturate near S = min(N_out, N_vc) = 4");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "kmeans", "mummergpu",
                                            "hotspot"};

  // One grid: the Ada-Baseline reference row plus Ada-ARI at S = 1..4,
  // all dispatched together on the exec pool.
  std::vector<exec::CellSpec> cells;
  for (const auto& b : benches) {
    cells.push_back({"ref", Scheme::kAdaBaseline, b, nullptr, false});
  }
  for (std::uint32_t s = 1; s <= 4; ++s) {
    for (const auto& b : benches) {
      cells.push_back({"S=" + std::to_string(s), Scheme::kAdaARI, b,
                       [s](Config& c) { c.injection_speedup = s; }, false});
    }
  }
  exec::ExperimentRunner runner(base, opts);
  const auto results = runner.run(cells);

  std::vector<std::string> headers = {"S"};
  for (const auto& b : benches) headers.push_back(b);
  TextTable t(headers);
  for (std::uint32_t s = 1; s <= 4; ++s) {
    std::vector<std::string> row = {std::to_string(s)};
    for (std::size_t b = 0; b < benches.size(); ++b) {
      const double ref = results[b].metrics.ipc;
      const double ipc = results[s * benches.size() + b].metrics.ipc;
      row.push_back(fmt(ref > 0.0 ? ipc / ref : 0.0, 3));
    }
    t.add_row(row);
  }
  std::printf("IPC normalized to Ada-Baseline\n%s\n", t.to_string().c_str());

  // The guideline itself, evaluated for the Table-I reply mix.
  const double mean_flits = mean_reply_flits(0.9, 5);
  std::printf("guideline: mean reply flits = %.2f; for InjRate 0.8 pkt/cyc "
              "Eq.(1) wants S >= %u; Eq.(2) caps at %u; recommended %u\n",
              mean_flits, min_speedup_eq1(0.8, mean_flits),
              max_speedup_eq2(4, 4),
              recommended_speedup(0.8, mean_flits, 4, 4));
  return 0;
}
