// Section 7.5(2): scalability over mesh sizes.
// Paper: ARI's IPC improvement grows with network size — +3.7% (4x4),
// +15.4% (6x6), +24.7% (8x8) — NoC latency/throughput matter more in
// bigger chips.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Section 7.5(2) — Scalability (4x4 / 6x6 / 8x8)",
                "ARI improvement grows with mesh size: +3.7% / +15.4% / "
                "+24.7%");
  const Config base = make_base_config();
  // The high+medium sensitivity mix drives the comparison; low-sensitivity
  // benchmarks dilute all sizes equally.
  std::vector<std::string> mix = benchmarks_with(Sensitivity::kHigh);
  for (const auto& b : benchmarks_with(Sensitivity::kMedium)) {
    mix.push_back(b);
  }

  TextTable t({"mesh", "ccs", "mcs", "Ada-Baseline geo-IPC",
               "Ada-ARI geo-IPC", "ARI gain"});
  for (std::uint32_t k : {4u, 6u, 8u}) {
    // Scale the MC count with the mesh so the CC:MC ratio (the
    // few-to-many pattern driving the bottleneck) stays ~3.5:1.
    const std::uint32_t mcs = static_cast<std::uint32_t>(k * k / 4.5 + 0.5);
    auto sized = [&](Config& c) {
      c.mesh_width = c.mesh_height = k;
      c.num_mcs = mcs;
    };
    std::vector<double> b_ipc, a_ipc;
    for (const auto& b : mix) {
      b_ipc.push_back(run_scheme(base, Scheme::kAdaBaseline, b, sized).ipc);
      a_ipc.push_back(run_scheme(base, Scheme::kAdaARI, b, sized).ipc);
    }
    const double gb = geomean(b_ipc), ga = geomean(a_ipc);
    t.add_row({std::to_string(k) + "x" + std::to_string(k),
               std::to_string(k * k - mcs), std::to_string(mcs), fmt(gb, 3),
               fmt(ga, 3), fmt_pct(ga / gb - 1.0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("shape check: the 'ARI gain' column increases with size.\n");
  return 0;
}
