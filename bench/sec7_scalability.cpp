// Section 7.5(2): scalability over mesh sizes, extended with a fabric axis.
// Paper: ARI's IPC improvement grows with network size — +3.7% (4x4),
// +15.4% (6x6), +24.7% (8x8) — NoC latency/throughput matter more in
// bigger chips. The extension runs the same size ladder on the torus and
// chiplet fabrics (docs/fabrics.md): the scaling trend is topological, so
// it should survive wraparound links and die-boundary serdes.
#include "bench_util.hpp"
#include "core/sweep.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace arinoc;
  const exec::ExecOptions opts = exec::require_exec_flags(argc, argv);
  bench::banner("Section 7.5(2) — Scalability (4x4 / 6x6 / 8x8, by fabric)",
                "ARI improvement grows with mesh size: +3.7% / +15.4% / "
                "+24.7%");
  const Config base = make_base_config();
  // The high+medium sensitivity mix drives the comparison; low-sensitivity
  // benchmarks dilute all sizes equally.
  std::vector<std::string> mix = benchmarks_with(Sensitivity::kHigh);
  for (const auto& b : benchmarks_with(Sensitivity::kMedium)) {
    mix.push_back(b);
  }

  // One (grid size x fabric x scheme x benchmark) sweep on the exec pool.
  // MC count scales with the grid so the CC:MC ratio (the few-to-many
  // pattern driving the bottleneck) stays ~3.5:1. The chiplet point splits
  // the same grid into 2x2 dies (keeping node count and MC placement), so
  // within a column size is the only variable.
  const std::vector<std::uint32_t> sizes = {4u, 6u, 8u};
  const std::vector<std::string> fabrics = {"mesh", "torus", "chiplet"};
  std::vector<SweepPoint> points;
  for (std::uint32_t k : sizes) {
    const std::uint32_t mcs = static_cast<std::uint32_t>(k * k / 4.5 + 0.5);
    for (const std::string& f : fabrics) {
      points.push_back({std::to_string(k) + "x" + std::to_string(k) + "-" + f,
                        [k, mcs, f](Config& c) {
                          c.fabric = f;
                          c.num_mcs = mcs;
                          if (f == "chiplet") {
                            c.chiplets_x = c.chiplets_y = 2;
                            c.mesh_width = c.mesh_height = k / 2;
                          } else {
                            c.mesh_width = c.mesh_height = k;
                          }
                        }});
    }
  }
  const auto cells = Sweep(base)
                         .over(points)
                         .schemes({Scheme::kAdaBaseline, Scheme::kAdaARI})
                         .benchmarks(mix)
                         .jobs(opts.jobs)
                         .cache(opts.cache_enabled, opts.cache_dir)
                         .progress(opts.progress)
                         .run();

  TextTable t({"grid", "fabric", "ccs", "mcs", "Ada-Baseline geo-IPC",
               "Ada-ARI geo-IPC", "ARI gain"});
  const std::size_t per_scheme = mix.size();
  std::size_t cell = 0;
  for (std::uint32_t k : sizes) {
    const std::uint32_t mcs = static_cast<std::uint32_t>(k * k / 4.5 + 0.5);
    for (const std::string& f : fabrics) {
      std::vector<double> b_ipc, a_ipc;
      for (std::size_t i = 0; i < per_scheme; ++i) {
        b_ipc.push_back(cells[cell + i].metrics.ipc);
        a_ipc.push_back(cells[cell + per_scheme + i].metrics.ipc);
      }
      cell += 2 * per_scheme;
      const double gb = geomean_guarded(b_ipc), ga = geomean_guarded(a_ipc);
      t.add_row({std::to_string(k) + "x" + std::to_string(k), f,
                 std::to_string(k * k - mcs), std::to_string(mcs),
                 fmt(gb, 3), fmt(ga, 3), fmt_pct(ga / gb - 1.0)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("shape check: within each fabric, the 'ARI gain' column "
              "increases with grid size.\n");
  return 0;
}
