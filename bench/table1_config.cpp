// Table I: the evaluation configuration (printed from the live Config so
// any drift between code and documentation is visible).
#include "bench_util.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Table I — Key Parameters for Evaluation",
                "28 CCs, 8 MCs (FR-FCFS, diamond), 6x6 mesh, 4 VCs x 1 pkt, "
                "128-bit links, 36-flit NI queue, GTX980 GDDR5 timings");
  const Config cfg = make_base_config();
  std::printf("%s\n", cfg.table1().c_str());
  std::printf("derived: long reply packet = %u flits, VC depth = %u flits, "
              "bisection links = %u\n",
              cfg.reply_long_flits(), cfg.vc_depth_flits_reply(),
              2 * cfg.mesh_height);
  return 0;
}
