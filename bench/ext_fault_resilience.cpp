// Extension experiment (robustness): fault rate x scheme. Sweeps the
// transient-corruption rate on the reply network and reports how each
// scheme's IPC degrades, how many corrupted reply packets the NI-level
// retransmission recovers, and what the retransmission overhead costs.
// Healthy shape: IPC degrades monotonically (and gracefully) with the fault
// rate, recovery stays >= 99%, and no scheme deadlocks.
//
//   ext_fault_resilience [--fabric <f>] [--out <file>] [exec flags]
//     --fabric  mesh | torus | cmesh | chiplet — run the grid on one of the
//               shared fabric-axis configurations (see ext_fabric_sweep;
//               default: the base 6x6 mesh)
//     --out     cell-grid JSON path (default: BENCH_fault_resilience.json)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_util.hpp"
#include "exec/runner.hpp"

int main(int argc, char** argv) {
  using namespace arinoc;
  exec::ExecOptions opts = exec::options_from_env(true);
  if (!exec::parse_exec_flags(argc, argv, opts)) return 2;
  std::string fabric = "mesh";
  bool fabric_flag = false;
  std::string out_path = "BENCH_fault_resilience.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fabric" && i + 1 < argc) {
      fabric = argv[++i];
      fabric_flag = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ext_fault_resilience [--fabric <f>] "
                   "[--out <file>]\n");
      return 2;
    }
  }
  bench::banner("Extension — fault resilience (corruption rate x scheme)",
                "reply-side CRC + retransmission recovers >=99% of corrupted "
                "packets; IPC degrades gracefully and monotonically");
  Config base = make_base_config();
  // --fabric maps onto the shared fabric-axis configs so results line up
  // with ext_fabric_sweep cells. Without the flag the base 6x6 mesh runs
  // unchanged (the shape thresholds below were calibrated on it).
  if (fabric_flag && !bench::apply_fabric(fabric, base)) return 2;
  const std::string benchmark = "bfs";
  const double rates[] = {0.0, 1e-4, 5e-4, 2e-3};
  const Scheme schemes[] = {Scheme::kXYBaseline, Scheme::kAdaBaseline,
                            Scheme::kAdaARI};

  // The full (scheme x rate) grid runs at once on the exec pool; the
  // sequential shape checks below only look at the collected results.
  std::vector<exec::CellSpec> cells;
  for (const Scheme scheme : schemes) {
    for (const double rate : rates) {
      char label[32];
      std::snprintf(label, sizeof(label), "rate=%g", rate);
      cells.push_back({label, scheme, benchmark, [rate](Config& c) {
                         c.fault_corrupt_rate = rate;
                         // Longer measurement window: at the smallest rates
                         // the IPC delta is comparable to scheduling noise
                         // over the default 8k cycles.
                         c.run_cycles = std::max<Cycle>(c.run_cycles, 24000);
                       }});
    }
  }
  exec::ExperimentRunner runner(base, opts);
  const auto results = runner.run(cells);

  bool shape_ok = true;
  std::ostringstream js;
  js << "{\n" << bench::bench_json_stamp("fault_resilience", base)
     << "  \"fabric\": \"" << fabric << "\",\n  \"cells\": [\n";
  bool first_cell = true;
  std::size_t cell = 0;
  for (const Scheme scheme : schemes) {
    TextTable t({"corrupt rate", "IPC", "IPC vs fault-free", "corrupted",
                 "retransmitted", "recovered", "lost", "retx flit overhead"});
    double base_ipc = 0.0;
    double prev_ipc = 0.0;
    for (std::size_t i = 0; i < std::size(rates); ++i, ++cell) {
      const double rate = rates[i];
      const auto& r = results[cell];
      if (!r.ok()) {
        std::printf("  !! %s at rate %g failed (%s): %s\n",
                    scheme_name(scheme), rate, r.error_kind.c_str(),
                    r.error.c_str());
        shape_ok = false;
        continue;
      }
      const Metrics& m = r.metrics;
      if (i == 0) base_ipc = m.ipc;
      const std::uint64_t total_flits =
          m.flits_by_type[0] + m.flits_by_type[1] + m.flits_by_type[2] +
          m.flits_by_type[3];
      const double overhead =
          total_flits ? static_cast<double>(m.activity.noc_retx_flits) /
                            static_cast<double>(total_flits)
                      : 0.0;
      char rate_s[32];
      std::snprintf(rate_s, sizeof(rate_s), "%g", rate);
      t.add_row({rate_s, fmt(m.ipc, 3),
                 fmt(base_ipc > 0.0 ? m.ipc / base_ipc : 0.0, 3),
                 std::to_string(m.packets_corrupted),
                 std::to_string(m.packets_retransmitted),
                 std::to_string(m.packets_recovered),
                 std::to_string(m.packets_lost), fmt_pct(overhead, 2)});

      js << (first_cell ? "" : ",\n") << "    {\"fabric\": \"" << fabric
         << "\", \"scheme\": \"" << scheme_name(scheme)
         << "\", \"corrupt_rate\": " << rate << ", \"ipc\": " << m.ipc
         << ", \"packets_corrupted\": " << m.packets_corrupted
         << ", \"packets_retransmitted\": " << m.packets_retransmitted
         << ", \"packets_recovered\": " << m.packets_recovered
         << ", \"packets_lost\": " << m.packets_lost
         << ", \"retx_flits\": " << m.activity.noc_retx_flits
         << ", \"retx_flit_overhead\": " << overhead << "}";
      first_cell = false;

      // Shape checks: recovery >= 99% of corrupted packets; IPC must not
      // *improve* materially as the fault rate rises. The tolerance covers
      // scheduling noise: at the smallest rates a congested baseline can
      // swing a few percent either way depending on the RNG stream.
      if (m.packets_corrupted > 0) {
        const double recovery =
            1.0 - static_cast<double>(m.packets_lost) /
                      static_cast<double>(m.packets_corrupted);
        if (recovery < 0.99) {
          std::printf("  !! recovery %.4f < 0.99 at rate %g (%s)\n", recovery,
                      rate, scheme_name(scheme));
          shape_ok = false;
        }
      }
      if (i > 0 && prev_ipc > 0.0 && m.ipc > prev_ipc * 1.05) {
        std::printf("  !! IPC rose from %.3f to %.3f at rate %g (%s)\n",
                    prev_ipc, m.ipc, rate, scheme_name(scheme));
        shape_ok = false;
      }
      prev_ipc = m.ipc;
    }
    std::printf("%s on %s\n%s\n", scheme_name(scheme), benchmark.c_str(),
                t.to_string().c_str());
  }
  js << "\n  ]\n}\n";
  std::ofstream(out_path) << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("shape check: %s\n", shape_ok ? "ok" : "FAILED");
  return shape_ok ? 0 : 1;
}
