// Figure 12: data stall time in the memory controllers (reply data blocked
// from entering the NI because the injection queues are full).
// Paper: XY-ARI cuts MC stall time by ~47.5% vs XY-Baseline; Ada-ARI by
// ~67.8% vs Ada-Baseline; MultiPort helps only a little.
#include <map>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 12 — Normalized MC data stall time",
                "XY-ARI -47.5%, Ada-ARI -67.8%, MultiPort small reduction");
  const Config base = make_base_config();
  const std::vector<Scheme> schemes = {
      Scheme::kXYBaseline, Scheme::kXYARI, Scheme::kAdaBaseline,
      Scheme::kAdaMultiPort, Scheme::kAdaARI};

  // Normalize each benchmark to its XY-Baseline stall time; arithmetic
  // mean of the ratios (the paper's bars are per-benchmark normalized).
  std::map<int, std::vector<double>> stalls;
  std::vector<std::string> benches;
  for (const auto& b : all_benchmark_names()) {
    const double base_stall =
        bench::mc_stall_of(run_scheme(base, schemes[0], b));
    if (base_stall < 1.0) continue;  // No stall to normalize against.
    benches.push_back(b);
    stalls[0].push_back(1.0);
    for (std::size_t s = 1; s < schemes.size(); ++s) {
      stalls[static_cast<int>(s)].push_back(
          bench::mc_stall_of(run_scheme(base, schemes[s], b)) / base_stall);
    }
  }

  std::vector<std::string> headers = {"benchmark"};
  for (Scheme s : schemes) headers.push_back(scheme_name(s));
  TextTable t(headers);
  for (std::size_t b = 0; b < benches.size(); ++b) {
    std::vector<std::string> row = {benches[b]};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      row.push_back(fmt(stalls[static_cast<int>(s)][b], 3));
    }
    t.add_row(row);
  }
  std::vector<std::string> mean_row = {"MEAN"};
  std::vector<double> means;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    means.push_back(mean(stalls[static_cast<int>(s)]));
    mean_row.push_back(fmt(means.back(), 3));
  }
  t.add_row(mean_row);
  std::printf("MC stall time (normalized to XY-Baseline, lower is better)\n%s\n",
              t.to_string().c_str());
  std::printf("XY-ARI reduction: %.1f%% (paper: 47.5%%)\n",
              (1.0 - means[1]) * 100.0);
  std::printf("Ada-ARI reduction vs Ada-Baseline: %.1f%% (paper: 67.8%%)\n",
              means[2] > 0 ? (1.0 - means[4] / means[2]) * 100.0 : 0.0);
  return 0;
}
