// Ablation (beyond the paper's figures): number of split NI queues under a
// fixed total buffer budget (§4.1 says ⌈W/N⌉ queues suffice; fewer may do
// when the MC does not produce data every cycle).
#include <map>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — split NI queue count (k = 1..4, fixed budget)",
                "k=1 degenerates to the enhanced baseline supply; gains "
                "saturate once supply matches MC output rate");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "kmeans", "srad",
                                            "blackscholes"};

  std::vector<std::string> headers = {"k"};
  for (const auto& b : benches) headers.push_back(b);
  TextTable t(headers);

  std::map<std::string, double> ref;
  for (const auto& b : benches) {
    ref[b] = run_scheme(base, Scheme::kAdaBaseline, b).ipc;
  }
  for (std::uint32_t k = 1; k <= 4; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const auto& b : benches) {
      const Metrics m = run_scheme(base, Scheme::kAdaARI, b,
                                   [&](Config& c) {
                                     c.split_queues = k;
                                   });
      row.push_back(fmt(m.ipc / ref[b], 3));
    }
    t.add_row(row);
  }
  std::printf("IPC normalized to Ada-Baseline (consumption fixed at S=4)\n%s\n",
              t.to_string().c_str());
  return 0;
}
