// Figure 15: 2 vs 4 virtual channels, with and without ARI (injection
// speedup = VC count).
// Paper: (1) ARI beats the baseline at equal VC count; (2) going 2->4 VCs
// helps ARI much more than the baseline — with the injection bottleneck
// removed, ARI can actually fill the extra VCs.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 15 — ARI with different VC counts",
                "ARI gains more from 2->4 VCs than the baseline does");
  const Config base = make_base_config();

  auto with_vcs = [](std::uint32_t vcs) {
    return [vcs](Config& c) {
      c.num_vcs = vcs;
      c.injection_speedup = std::min(c.injection_speedup, vcs);
      c.split_queues = std::min(c.split_queues, vcs);
    };
  };

  TextTable t({"benchmark", "2VC-Base", "4VC-Base", "2VC-ARI", "4VC-ARI",
               "base 2->4", "ARI 2->4"});
  std::vector<double> base_gain, ari_gain;
  for (const auto& b : fig15_benchmarks()) {
    const double b2 =
        run_scheme(base, Scheme::kAdaBaseline, b, with_vcs(2)).ipc;
    const double b4 =
        run_scheme(base, Scheme::kAdaBaseline, b, with_vcs(4)).ipc;
    const double a2 = run_scheme(base, Scheme::kAdaARI, b, with_vcs(2)).ipc;
    const double a4 = run_scheme(base, Scheme::kAdaARI, b, with_vcs(4)).ipc;
    base_gain.push_back(b4 / b2);
    ari_gain.push_back(a4 / a2);
    t.add_row({b, fmt(b2 / b2, 3), fmt(b4 / b2, 3), fmt(a2 / b2, 3),
               fmt(a4 / b2, 3), fmt(b4 / b2, 3), fmt(a4 / a2, 3)});
  }
  t.add_row({"GEOMEAN", "", "", "", "", fmt(geomean(base_gain), 3),
             fmt(geomean(ari_gain), 3)});
  std::printf("IPC normalized to 2VC-Baseline per benchmark\n%s\n",
              t.to_string().c_str());
  std::printf("shape check: 'ARI 2->4' column > 'base 2->4' column.\n");
  return 0;
}
