// Ablation: per-hop router pipeline depth (1..3 extra stages).
// ARI attacks a *throughput* bottleneck at the injection point, so its
// benefit should survive deeper (slower) router pipelines — per-hop
// latency and injection contention are orthogonal.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — router pipeline depth (per-hop latency)",
                "ARI's gain persists across 1/2/3-stage router pipelines");
  const Config base = make_base_config();
  const std::vector<std::string> benches = {"bfs", "mummergpu", "srad"};

  TextTable t({"stages", "bfs gain", "mummergpu gain", "srad gain"});
  for (std::uint32_t stages = 1; stages <= 3; ++stages) {
    auto tweak = [&](Config& c) { c.router_pipeline_stages = stages; };
    std::vector<std::string> row = {std::to_string(stages)};
    for (const auto& b : benches) {
      const double v0 = run_scheme(base, Scheme::kAdaBaseline, b, tweak).ipc;
      const double v1 = run_scheme(base, Scheme::kAdaARI, b, tweak).ipc;
      row.push_back(fmt(v1 / v0, 3) + "x");
    }
    t.add_row(row);
  }
  std::printf("Ada-ARI IPC / Ada-Baseline IPC at equal pipeline depth\n%s\n",
              t.to_string().c_str());
  return 0;
}
