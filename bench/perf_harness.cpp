// Simulator-throughput harness for the activity-driven core.
//
// Runs a small grid of (workload, scheme, fabric) cells twice each — once
// with --no-activity-equivalent always-on stepping, once with activity-driven
// stepping — times both, and byte-compares the metrics JSON of the two runs.
// Any divergence is a missed-wake/catch-up bug and fails the harness (exit
// 1): the speed numbers of a wrong simulator are meaningless.
//
// A second section times latency attribution (src/obs/attr): the same cell
// with and without an attached LatencyAttributor. Attribution must not
// perturb the simulation — the metrics byte-compare once the attr summary
// fields are scrubbed — and its wall-clock overhead is reported against the
// < 5% budget (a warning, not a gate: shared CI machines are too noisy for
// a hard wall-clock threshold).
//
// A third section sweeps the domain-decomposition thread matrix: every cell
// at 1/2/4/8 network threads, byte-comparing each run's metrics against the
// cell's 1-thread run (a hard gate) and reporting cycles/sec per point plus
// the host's hardware concurrency (speedup is reported, not gated — a
// 1-core CI runner cannot scale wall-clock no matter how correct the
// decomposition is).
//
// Usage:
//   perf_harness [--quick] [--out <file>]
//
//   --quick   shorter runs (CI smoke); full runs give steadier numbers
//   --out     output JSON path (default: BENCH_throughput.json)
//
// Output JSON: one object per cell with cycles/sec for both modes and the
// activity/always-on speedup, plus the geometric-mean speedup over all
// cells and the attribution-overhead section. See docs/performance.md for
// how to read it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "obs/attr.hpp"
#include "workloads/benchmark.hpp"

using namespace arinoc;

namespace {

struct Cell {
  std::string name;       ///< Short label ("low-inj", "saturated", ...).
  std::string workload;
  Scheme scheme;
  bool da2mesh = false;
  bool fault = false;
};

struct CellResult {
  Cell cell;
  Cycle cycles = 0;
  double always_on_cps = 0.0;  ///< Simulated cycles per wall-clock second.
  double activity_cps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

Config cell_config(const Cell& cell, bool quick) {
  Config cfg = apply_scheme(make_base_config(), cell.scheme);
  cfg.warmup_cycles = quick ? 500 : 2000;
  cfg.run_cycles = quick ? 8000 : 40000;
  cfg.seed = derive_cell_seed(cfg.seed, cell.workload);
  if (cell.fault) {
    // Corruption only — the campaign ext_fault_resilience certifies
    // deadlock-free. Stall/credit-loss rates that look mild on short runs
    // genuinely deadlock a saturated reply network at this length (also in
    // always-on mode); that is the watchdog's test to own, not a
    // throughput cell.
    cfg.fault_corrupt_rate = 1e-3;
  }
  return cfg;
}

/// One timed simulation; returns (metrics JSON, cycles/sec).
std::pair<std::string, double> timed_run(const Cell& cell, Config cfg,
                                         bool activity) {
  cfg.activity_driven = activity;
  GpgpuSim sim(cfg, *find_benchmark(cell.workload), cell.da2mesh);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_with_warmup();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double total =
      static_cast<double>(cfg.warmup_cycles + cfg.run_cycles);
  return {metrics_to_json(sim.collect()), total / std::max(secs, 1e-9)};
}

CellResult run_cell(const Cell& cell, bool quick) {
  const Config cfg = cell_config(cell, quick);
  CellResult r;
  r.cell = cell;
  r.cycles = cfg.warmup_cycles + cfg.run_cycles;
  const auto always_on = timed_run(cell, cfg, /*activity=*/false);
  const auto activity = timed_run(cell, cfg, /*activity=*/true);
  r.always_on_cps = always_on.second;
  r.activity_cps = activity.second;
  r.speedup = r.activity_cps / r.always_on_cps;
  r.identical = always_on.first == activity.first;
  return r;
}

std::string json_escape_name(const Cell& c) {
  std::string fabric = c.da2mesh ? "da2mesh" : "mesh";
  if (c.fault) fabric += "+fault";
  return fabric;
}

/// One (cell, thread-count) point of the domain-decomposition matrix.
struct ThreadResult {
  Cell cell;
  unsigned threads = 0;
  double cps = 0.0;
  double speedup = 0.0;    ///< vs the same cell at threads == 1.
  bool identical = false;  ///< Metrics JSON byte-equal to the 1-thread run.
};

struct AttrResult {
  Cell cell;
  double off_cps = 0.0;  ///< Cycles/sec without an attributor attached.
  double on_cps = 0.0;   ///< Cycles/sec with attribution recording.
  double overhead = 0.0; ///< off/on - 1 (fraction of wall-clock added).
  bool identical = false;  ///< Scrubbed attr-on metrics == attr-off metrics.
  std::uint64_t violations = 0;  ///< Conservation-check failures (want 0).
};

/// Times one cell with and without latency attribution (activity-driven
/// stepping both times). Attribution is host-side observation only, so the
/// attr-on metrics — with the attr summary fields scrubbed back out — must
/// byte-match the attr-off run; any difference means a hook perturbed the
/// simulation.
AttrResult run_attr_cell(const Cell& cell, bool quick) {
  Config cfg = cell_config(cell, quick);
  cfg.activity_driven = true;
  AttrResult r;
  r.cell = cell;

  GpgpuSim off(cfg, *find_benchmark(cell.workload), cell.da2mesh);
  auto t0 = std::chrono::steady_clock::now();
  off.run_with_warmup();
  auto t1 = std::chrono::steady_clock::now();
  const double total = static_cast<double>(cfg.warmup_cycles + cfg.run_cycles);
  r.off_cps = total /
      std::max(std::chrono::duration<double>(t1 - t0).count(), 1e-9);
  const std::string off_json = metrics_to_json(off.collect());

  obs::LatencyAttributor attr;
  GpgpuSim on(cfg, *find_benchmark(cell.workload), cell.da2mesh);
  on.attach_attributor(&attr);
  t0 = std::chrono::steady_clock::now();
  on.run_with_warmup();
  t1 = std::chrono::steady_clock::now();
  r.on_cps = total /
      std::max(std::chrono::duration<double>(t1 - t0).count(), 1e-9);
  r.overhead = r.off_cps / std::max(r.on_cps, 1e-9) - 1.0;

  Metrics scrubbed = on.collect();
  r.violations = scrubbed.attr_violations;
  scrubbed.attr_enabled = false;
  scrubbed.request_stage_share = {};
  scrubbed.reply_stage_share = {};
  scrubbed.attr_violations = 0;
  scrubbed.bottleneck.clear();
  r.identical = metrics_to_json(scrubbed) == off_json;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_harness [--quick] [--out <file>]\n");
      return 2;
    }
  }

  // Grid: injection rate is the lever activity gating responds to, so the
  // cells span near-idle through saturated, plus the fault and overlay
  // configurations whose wake edges are easiest to get wrong.
  const std::vector<Cell> cells = {
      {"low-inj-myocyte", "myocyte", Scheme::kAdaARI},
      {"low-inj-matrixMul", "matrixMul", Scheme::kAdaBaseline},
      {"mid-inj-hotspot", "hotspot", Scheme::kAdaMultiPort},
      {"saturated-bfs", "bfs", Scheme::kAdaARI},
      {"fault-bfs", "bfs", Scheme::kAdaARI, /*da2mesh=*/false, /*fault=*/true},
      {"overlay-hotspot", "hotspot", Scheme::kAdaARI, /*da2mesh=*/true},
  };

  std::vector<CellResult> results;
  bool all_identical = true;
  for (const Cell& cell : cells) {
    std::printf("%-20s %-10s %-14s ...", cell.name.c_str(),
                cell.workload.c_str(), scheme_name(cell.scheme));
    std::fflush(stdout);
    const CellResult r = run_cell(cell, quick);
    std::printf(" %9.0f -> %9.0f cyc/s  (%.2fx)%s\n", r.always_on_cps,
                r.activity_cps, r.speedup,
                r.identical ? "" : "  ** METRICS DIVERGED **");
    all_identical = all_identical && r.identical;
    results.push_back(r);
  }

  double log_sum = 0.0;
  for (const CellResult& r : results) log_sum += std::log(r.speedup);
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));
  std::printf("geomean speedup: %.2fx\n", geomean);

  // Attribution overhead: one light and one saturated cell cover the
  // per-packet hook cost at both ends of the injection range.
  std::printf("\nlatency attribution overhead (budget: <5%% wall-clock):\n");
  std::vector<AttrResult> attr_results;
  bool attr_ok = true;
  for (const Cell& cell : {cells[1], cells[3]}) {
    const AttrResult a = run_attr_cell(cell, quick);
    std::printf("%-20s %9.0f -> %9.0f cyc/s  (+%.1f%%)%s%s\n",
                a.cell.name.c_str(), a.off_cps, a.on_cps, a.overhead * 100.0,
                a.identical ? "" : "  ** METRICS PERTURBED **",
                a.violations == 0 ? "" : "  ** CONSERVATION VIOLATED **");
    if (a.overhead > 0.05) {
      std::printf("  (warning: overhead %.1f%% above the 5%% budget — rerun "
                  "on a quiet machine before acting on it)\n",
                  a.overhead * 100.0);
    }
    attr_ok = attr_ok && a.identical && a.violations == 0;
    attr_results.push_back(a);
  }

  // Domain-decomposition matrix: every cell at 1/2/4/8 network threads
  // (activity-driven stepping, the production mode). Byte-identity against
  // the cell's 1-thread run is the gate — parallelism is an implementation
  // detail, never a model change. The speedups are reported, not gated:
  // wall-clock scaling needs real cores, so hw_concurrency rides along and
  // numbers from a 1-core CI runner honestly show ~1.0x (barrier overhead
  // included). The overlay cell always steps serially (its endpoint
  // coupling is not decomposable), so its rows are a serial control.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\ndomain decomposition (threads x cells, hw_concurrency=%u):\n",
              hw);
  std::vector<ThreadResult> thread_results;
  bool threads_identical = true;
  for (const Cell& cell : cells) {
    std::string base_json;
    double base_cps = 0.0;
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
      Config cfg = cell_config(cell, quick);
      cfg.threads = t;
      const auto run = timed_run(cell, cfg, /*activity=*/true);
      ThreadResult r;
      r.cell = cell;
      r.threads = t;
      r.cps = run.second;
      if (t == 1) {
        base_json = run.first;
        base_cps = run.second;
      }
      r.speedup = run.second / std::max(base_cps, 1e-9);
      r.identical = run.first == base_json;
      threads_identical = threads_identical && r.identical;
      std::printf("%-20s threads=%u %9.0f cyc/s  (%.2fx)%s\n",
                  cell.name.c_str(), t, r.cps, r.speedup,
                  r.identical ? "" : "  ** METRICS DIVERGED **");
      thread_results.push_back(r);
    }
  }

  std::ostringstream js;
  js << "{\n" << bench::bench_json_stamp("throughput", make_base_config())
     << "  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    js << "    {\"name\": \"" << r.cell.name << "\", \"workload\": \""
       << r.cell.workload << "\", \"scheme\": \""
       << scheme_name(r.cell.scheme) << "\", \"fabric\": \""
       << json_escape_name(r.cell) << "\", \"cycles\": " << r.cycles
       << ", \"always_on_cps\": " << std::llround(r.always_on_cps)
       << ", \"activity_cps\": " << std::llround(r.activity_cps)
       << ", \"speedup\": " << r.speedup << ", \"bit_identical\": "
       << (r.identical ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  js << "  ],\n  \"geomean_speedup\": " << geomean
     << ",\n  \"attr_overhead\": [\n";
  for (std::size_t i = 0; i < attr_results.size(); ++i) {
    const AttrResult& a = attr_results[i];
    js << "    {\"name\": \"" << a.cell.name << "\", \"workload\": \""
       << a.cell.workload << "\", \"scheme\": \""
       << scheme_name(a.cell.scheme)
       << "\", \"off_cps\": " << std::llround(a.off_cps)
       << ", \"on_cps\": " << std::llround(a.on_cps)
       << ", \"overhead\": " << a.overhead << ", \"non_perturbing\": "
       << (a.identical ? "true" : "false")
       << ", \"attr_violations\": " << a.violations << "}"
       << (i + 1 < attr_results.size() ? "," : "") << "\n";
  }
  js << "  ],\n  \"hw_concurrency\": " << hw
     << ",\n  \"thread_matrix\": [\n";
  for (std::size_t i = 0; i < thread_results.size(); ++i) {
    const ThreadResult& r = thread_results[i];
    js << "    {\"name\": \"" << r.cell.name << "\", \"workload\": \""
       << r.cell.workload << "\", \"scheme\": \""
       << scheme_name(r.cell.scheme) << "\", \"fabric\": \""
       << json_escape_name(r.cell) << "\", \"threads\": " << r.threads
       << ", \"cps\": " << std::llround(r.cps)
       << ", \"speedup_vs_1t\": " << r.speedup << ", \"bit_identical\": "
       << (r.identical ? "true" : "false") << "}"
       << (i + 1 < thread_results.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::ofstream(out) << js.str();
  std::printf("wrote %s\n", out.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: activity-driven metrics diverged from always-on\n");
    return 1;
  }
  if (!attr_ok) {
    std::fprintf(stderr,
                 "FAIL: latency attribution perturbed the simulation or "
                 "broke latency conservation\n");
    return 1;
  }
  if (!threads_identical) {
    std::fprintf(stderr,
                 "FAIL: domain-parallel metrics diverged from the 1-thread "
                 "run\n");
    return 1;
  }
  return 0;
}
