// Simulator-throughput harness for the activity-driven core.
//
// Runs a small grid of (workload, scheme, fabric) cells twice each — once
// with --no-activity-equivalent always-on stepping, once with activity-driven
// stepping — times both, and byte-compares the metrics JSON of the two runs.
// Any divergence is a missed-wake/catch-up bug and fails the harness (exit
// 1): the speed numbers of a wrong simulator are meaningless.
//
// Usage:
//   perf_harness [--quick] [--out <file>]
//
//   --quick   shorter runs (CI smoke); full runs give steadier numbers
//   --out     output JSON path (default: BENCH_throughput.json)
//
// Output JSON: one object per cell with cycles/sec for both modes and the
// activity/always-on speedup, plus the geometric-mean speedup over all
// cells. See docs/performance.md for how to read it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "workloads/benchmark.hpp"

using namespace arinoc;

namespace {

struct Cell {
  std::string name;       ///< Short label ("low-inj", "saturated", ...).
  std::string workload;
  Scheme scheme;
  bool da2mesh = false;
  bool fault = false;
};

struct CellResult {
  Cell cell;
  Cycle cycles = 0;
  double always_on_cps = 0.0;  ///< Simulated cycles per wall-clock second.
  double activity_cps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

Config cell_config(const Cell& cell, bool quick) {
  Config cfg = apply_scheme(make_base_config(), cell.scheme);
  cfg.warmup_cycles = quick ? 500 : 2000;
  cfg.run_cycles = quick ? 8000 : 40000;
  cfg.seed = derive_cell_seed(cfg.seed, cell.workload);
  if (cell.fault) {
    // Corruption only — the campaign ext_fault_resilience certifies
    // deadlock-free. Stall/credit-loss rates that look mild on short runs
    // genuinely deadlock a saturated reply network at this length (also in
    // always-on mode); that is the watchdog's test to own, not a
    // throughput cell.
    cfg.fault_corrupt_rate = 1e-3;
  }
  return cfg;
}

/// One timed simulation; returns (metrics JSON, cycles/sec).
std::pair<std::string, double> timed_run(const Cell& cell, Config cfg,
                                         bool activity) {
  cfg.activity_driven = activity;
  GpgpuSim sim(cfg, *find_benchmark(cell.workload), cell.da2mesh);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_with_warmup();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double total =
      static_cast<double>(cfg.warmup_cycles + cfg.run_cycles);
  return {metrics_to_json(sim.collect()), total / std::max(secs, 1e-9)};
}

CellResult run_cell(const Cell& cell, bool quick) {
  const Config cfg = cell_config(cell, quick);
  CellResult r;
  r.cell = cell;
  r.cycles = cfg.warmup_cycles + cfg.run_cycles;
  const auto always_on = timed_run(cell, cfg, /*activity=*/false);
  const auto activity = timed_run(cell, cfg, /*activity=*/true);
  r.always_on_cps = always_on.second;
  r.activity_cps = activity.second;
  r.speedup = r.activity_cps / r.always_on_cps;
  r.identical = always_on.first == activity.first;
  return r;
}

std::string json_escape_name(const Cell& c) {
  std::string fabric = c.da2mesh ? "da2mesh" : "mesh";
  if (c.fault) fabric += "+fault";
  return fabric;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_harness [--quick] [--out <file>]\n");
      return 2;
    }
  }

  // Grid: injection rate is the lever activity gating responds to, so the
  // cells span near-idle through saturated, plus the fault and overlay
  // configurations whose wake edges are easiest to get wrong.
  const std::vector<Cell> cells = {
      {"low-inj-myocyte", "myocyte", Scheme::kAdaARI},
      {"low-inj-matrixMul", "matrixMul", Scheme::kAdaBaseline},
      {"mid-inj-hotspot", "hotspot", Scheme::kAdaMultiPort},
      {"saturated-bfs", "bfs", Scheme::kAdaARI},
      {"fault-bfs", "bfs", Scheme::kAdaARI, /*da2mesh=*/false, /*fault=*/true},
      {"overlay-hotspot", "hotspot", Scheme::kAdaARI, /*da2mesh=*/true},
  };

  std::vector<CellResult> results;
  bool all_identical = true;
  for (const Cell& cell : cells) {
    std::printf("%-20s %-10s %-14s ...", cell.name.c_str(),
                cell.workload.c_str(), scheme_name(cell.scheme));
    std::fflush(stdout);
    const CellResult r = run_cell(cell, quick);
    std::printf(" %9.0f -> %9.0f cyc/s  (%.2fx)%s\n", r.always_on_cps,
                r.activity_cps, r.speedup,
                r.identical ? "" : "  ** METRICS DIVERGED **");
    all_identical = all_identical && r.identical;
    results.push_back(r);
  }

  double log_sum = 0.0;
  for (const CellResult& r : results) log_sum += std::log(r.speedup);
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));
  std::printf("geomean speedup: %.2fx\n", geomean);

  std::ostringstream js;
  js << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    js << "    {\"name\": \"" << r.cell.name << "\", \"workload\": \""
       << r.cell.workload << "\", \"scheme\": \""
       << scheme_name(r.cell.scheme) << "\", \"fabric\": \""
       << json_escape_name(r.cell) << "\", \"cycles\": " << r.cycles
       << ", \"always_on_cps\": " << std::llround(r.always_on_cps)
       << ", \"activity_cps\": " << std::llround(r.activity_cps)
       << ", \"speedup\": " << r.speedup << ", \"bit_identical\": "
       << (r.identical ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  js << "  ],\n  \"geomean_speedup\": " << geomean << "\n}\n";
  std::ofstream(out) << js.str();
  std::printf("wrote %s\n", out.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: activity-driven metrics diverged from always-on\n");
    return 1;
  }
  return 0;
}
