// Extension experiment (robustness): open-loop load factor x scheme.
//
// Closed-loop workloads self-throttle at capacity, so the saturation cliff
// the paper argues about never shows in their numbers. This bench drives
// the fabric open-loop — a constant pace profile scaled by a load factor —
// and locates each scheme's cliff: the first load where goodput falls
// measurably below the offered rate. Each (scheme, load) cell also runs
// with admission control enabled to show graceful degradation: under
// overload the admission variant sheds request-side traffic instead of
// letting the reply path collapse.
//
// Healthy shape: goodput tracks offered load below the cliff, the cliff
// exists (top load is past every scheme's capacity), goodput never exceeds
// offered load, and admission sheds under overload.
//
//   ext_serving_tail [--quick] [--fabric <f>] [--out <file>] [exec flags]
//     --quick   smaller grid + shorter runs (CI smoke)
//     --fabric  mesh | torus | cmesh | chiplet — run the grid on one of the
//               shared fabric-axis configurations (see ext_fabric_sweep;
//               default: the base 6x6 mesh)
//     --out     output JSON path (default: BENCH_serving_tail.json)
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "exec/runner.hpp"

int main(int argc, char** argv) {
  using namespace arinoc;
  exec::ExecOptions opts = exec::options_from_env(true);
  if (!exec::parse_exec_flags(argc, argv, opts)) return 2;
  bool quick = false;
  std::string fabric = "mesh";
  bool fabric_flag = false;
  std::string out = "BENCH_serving_tail.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--fabric" && i + 1 < argc) {
      fabric = argv[++i];
      fabric_flag = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: ext_serving_tail [--quick] [--fabric <f>] "
                   "[--out <file>]\n");
      return 2;
    }
  }

  bench::banner(
      "Extension — serving tail latency (load factor x scheme, open loop)",
      "open-loop load exposes the reply-side saturation cliff; admission "
      "control degrades gracefully (sheds requests, protects replies)");

  Config base = make_base_config();
  // --fabric maps onto the shared fabric-axis configs so results line up
  // with ext_fabric_sweep cells. Without the flag the base 6x6 mesh runs
  // unchanged (the cliff thresholds below were calibrated on it).
  if (fabric_flag && !bench::apply_fabric(fabric, base)) return 2;
  const std::string benchmark = "bfs";  // Names the cell; clients ignore it.
  const std::vector<Scheme> schemes =
      quick ? std::vector<Scheme>{Scheme::kXYBaseline, Scheme::kAdaARI}
            : std::vector<Scheme>{Scheme::kXYBaseline, Scheme::kAdaBaseline,
                                  Scheme::kAdaARI};
  // The top load must sit past every scheme's capacity — ARI absorbs ~2x
  // more offered load than the baseline before its cliff.
  const std::vector<double> loads =
      quick ? std::vector<double>{0.5, 1.0, 4.0}
            : std::vector<double>{0.4, 0.7, 1.0, 1.5, 2.2, 4.0};
  const Cycle run_cycles = quick ? 5000 : 16000;
  const Cycle warmup = quick ? 500 : 2000;

  // Grid: (scheme x load x admission) in one exec-pool run. The pace base
  // rate is chosen so the top load factor sits past every scheme's
  // capacity on this mesh.
  std::vector<exec::CellSpec> cells;
  for (const Scheme scheme : schemes) {
    for (const double load : loads) {
      for (const bool admission : {false, true}) {
        char label[48];
        std::snprintf(label, sizeof(label), "load=%g,adm=%s", load,
                      admission ? "on" : "off");
        cells.push_back({label, scheme, benchmark,
                         [load, admission, run_cycles, warmup](Config& c) {
                           c.open_loop = true;
                           c.pace_spec = "constant:0.04";
                           c.pace_scale = load;
                           c.admission_enabled = admission;
                           c.run_cycles = run_cycles;
                           c.warmup_cycles = warmup;
                         }});
      }
    }
  }
  exec::ExperimentRunner runner(base, opts);
  const auto results = runner.run(cells);

  bool shape_ok = true;
  std::ostringstream js;
  js << "{\n" << bench::bench_json_stamp("serving_tail", base)
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n  \"fabric\": \""
     << fabric << "\",\n  \"pace\": \"constant:0.04\",\n  \"cells\": [\n";
  bool first_cell = true;

  std::size_t cell = 0;
  for (const Scheme scheme : schemes) {
    TextTable t({"load", "admission", "offered", "goodput", "e2e p99",
                 "e2e p99.9", "shed", "degraded cyc"});
    double cliff_load = 0.0;  // First load where goodput < 90% of offered.
    for (const double load : loads) {
      Metrics no_adm;  // Admission-off cell of this (scheme, load) pair.
      for (const bool admission : {false, true}) {
        const auto& r = results[cell++];
        if (!r.ok()) {
          std::printf("  !! %s load %g adm=%d failed (%s): %s\n",
                      scheme_name(scheme), load, admission ? 1 : 0,
                      r.error_kind.c_str(), r.error.c_str());
          shape_ok = false;
          continue;
        }
        const Metrics& m = r.metrics;
        char load_s[16];
        std::snprintf(load_s, sizeof(load_s), "%g", load);
        t.add_row({load_s, admission ? "on" : "off", fmt(m.offered_rate, 4),
                   fmt(m.goodput, 4), fmt(m.e2e_latency_p99, 1),
                   fmt(m.e2e_latency_p999, 1), std::to_string(m.requests_shed),
                   std::to_string(m.cycles_throttled + m.cycles_shedding)});

        js << (first_cell ? "" : ",\n");
        first_cell = false;
        js << "    {\"fabric\": \"" << fabric << "\", \"scheme\": \""
           << scheme_name(scheme)
           << "\", \"load\": " << load << ", \"admission\": "
           << (admission ? "true" : "false")
           << ", \"offered_rate\": " << m.offered_rate
           << ", \"goodput\": " << m.goodput
           << ", \"e2e_latency_p99\": " << m.e2e_latency_p99
           << ", \"e2e_latency_p999\": " << m.e2e_latency_p999
           << ", \"reply_latency_p99\": " << m.reply_latency_p99
           << ", \"reply_latency_p999\": " << m.reply_latency_p999
           << ", \"requests_shed\": " << m.requests_shed
           << ", \"requests_deferred\": " << m.requests_deferred
           << ", \"degrade_transitions\": " << m.degrade_transitions
           << ", \"cycles_degraded\": "
           << (m.cycles_throttled + m.cycles_shedding) << "}";

        // Shape checks (admission-off cells carry the pure cliff shape).
        if (!admission) {
          no_adm = m;
          if (load == loads.front() && m.goodput < 0.85 * m.offered_rate) {
            std::printf("  !! %s: goodput %.4f well below offered %.4f at "
                        "the lowest load\n",
                        scheme_name(scheme), m.goodput, m.offered_rate);
            shape_ok = false;
          }
          if (cliff_load == 0.0 && m.goodput < 0.90 * m.offered_rate) {
            cliff_load = load;
          }
          if (load == loads.back() && m.goodput > 0.97 * m.offered_rate) {
            std::printf("  !! %s: top load %g did not saturate (goodput "
                        "%.4f of offered %.4f)\n",
                        scheme_name(scheme), load, m.goodput, m.offered_rate);
            shape_ok = false;
          }
        } else {
          // Admission must not tank a healthy system: goodput stays within
          // 15% of the ungated run at every load.
          if (no_adm.goodput > 0.0 && m.goodput < 0.85 * no_adm.goodput) {
            std::printf("  !! %s: admission cut goodput %.4f -> %.4f at "
                        "load %g\n",
                        scheme_name(scheme), no_adm.goodput, m.goodput, load);
            shape_ok = false;
          }
          // Graceful degradation on the scheme whose reply path collapses:
          // the baseline must shed at top load and land a better tail than
          // the ungated run. ARI keeps its reply NIs drained even when
          // saturated (the paper's claim), so its occupancy-driven FSM
          // rightly stays in NORMAL there.
          if (scheme == Scheme::kXYBaseline && load == loads.back()) {
            if (m.requests_shed == 0) {
              std::printf("  !! %s: admission shed nothing at top load %g\n",
                          scheme_name(scheme), load);
              shape_ok = false;
            }
            if (m.e2e_latency_p99 >= no_adm.e2e_latency_p99) {
              std::printf("  !! %s: admission did not improve e2e p99 "
                          "(%.1f vs %.1f) at top load\n",
                          scheme_name(scheme), m.e2e_latency_p99,
                          no_adm.e2e_latency_p99);
              shape_ok = false;
            }
          }
        }
        // Tolerance: completions of requests issued during warmup can
        // drain into the measured window, nudging goodput past offered.
        if (m.goodput > m.offered_rate * 1.05) {
          std::printf("  !! %s: goodput %.4f exceeds offered %.4f\n",
                      scheme_name(scheme), m.goodput, m.offered_rate);
          shape_ok = false;
        }
      }
    }
    std::printf("%s (open loop, pace constant:0.04)\n%s", scheme_name(scheme),
                t.to_string().c_str());
    if (cliff_load > 0.0) {
      std::printf("saturation cliff at load factor %g\n\n", cliff_load);
    } else {
      std::printf("no cliff inside the swept range\n\n");
    }
  }

  js << "\n  ]\n}\n";
  std::ofstream(out) << js.str();
  std::printf("wrote %s\n", out.c_str());
  std::printf("shape check: %s\n", shape_ok ? "ok" : "FAILED");
  return shape_ok ? 0 : 1;
}
