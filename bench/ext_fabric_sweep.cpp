// Extension: the ARI schemes on arbitrary fabrics.
// Sweeps fabric (mesh / torus / cmesh / chiplet) x scheme x load (the
// low/mid/high-intensity workload mix) on the exec pool, prints the
// per-fabric ARI gain, and writes BENCH_fabric_sweep.json for CI schema
// validation and plotting.
//
// Flags: the shared exec flags (see src/exec/options.hpp) plus
//   --out PATH   output JSON path (default: BENCH_fabric_sweep.json)
//   --quick      short runs (CI smoke; marked "quick": true in the JSON)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sweep.hpp"
#include "exec/options.hpp"

namespace {

using namespace arinoc;

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace arinoc;

  exec::ExecOptions opts = exec::options_from_env(true);
  if (!exec::parse_exec_flags(argc, argv, opts)) return 2;
  std::string out_path = "BENCH_fabric_sweep.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  bench::banner("Extension — ARI across fabrics (mesh/torus/cmesh/chiplet)",
                "the reply bottleneck is topological, not mesh-specific: "
                "ARI should help wherever few MCs feed many CCs");

  Config base = make_base_config();
  if (quick) {
    base.warmup_cycles = 500;
    base.run_cycles = 4000;
  }

  // Load axis: the workload mix spans injection intensity (matrixMul low,
  // hotspot mid, bfs saturating), so each fabric is seen under light and
  // congested reply traffic.
  const std::vector<std::string> loads = {"matrixMul", "hotspot", "bfs"};
  const std::vector<Scheme> schemes = {Scheme::kXYBaseline, Scheme::kXYARI,
                                       Scheme::kAdaBaseline, Scheme::kAdaARI};

  // Fabric axis shared with ext_fault_resilience / ext_serving_tail
  // (their --fabric flag), so the three benches run identical fabrics.
  const std::vector<SweepPoint> points = bench::fabric_axis_points();
  const auto cells = Sweep(base)
                         .over(points)
                         .schemes(schemes)
                         .benchmarks(loads)
                         .jobs(opts.jobs)
                         .cache(opts.cache_enabled, opts.cache_dir)
                         .progress(opts.progress)
                         .run();

  // Per-fabric geomean IPC per scheme + the Ada-ARI / Ada-Baseline gain.
  TextTable t({"fabric", "XY-Base geo-IPC", "XY-ARI geo-IPC",
               "Ada-Base geo-IPC", "Ada-ARI geo-IPC", "ARI gain"});
  std::ostringstream json;
  json << "{\n" << bench::bench_json_stamp("fabric_sweep", base)
       << "  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"cells\": [\n";
  bool first_cell = true;
  std::ostringstream summary;
  const std::size_t per_scheme = loads.size();
  const std::size_t per_point = schemes.size() * per_scheme;
  int failures = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<double> geo;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      std::vector<double> ipc;
      for (std::size_t b = 0; b < per_scheme; ++b) {
        const SweepCell& c = cells[p * per_point + s * per_scheme + b];
        ipc.push_back(c.metrics.ipc);
        if (!c.ok()) {
          ++failures;
          std::fprintf(stderr, "FAILED cell %s/%s/%s: %s: %s\n",
                       c.point.c_str(), c.scheme.c_str(),
                       c.benchmark.c_str(), c.error_kind.c_str(),
                       c.error.c_str());
        }
        if (!first_cell) json << ",\n";
        first_cell = false;
        json << "    {\"fabric\": \"" << json_escape(c.point)
             << "\", \"scheme\": \"" << json_escape(c.scheme)
             << "\", \"benchmark\": \"" << json_escape(c.benchmark)
             << "\", \"ipc\": " << c.metrics.ipc
             << ", \"reply_latency\": " << c.metrics.reply_latency
             << ", \"reply_latency_p99\": " << c.metrics.reply_latency_p99
             << ", \"mc_stall_cycles\": " << c.metrics.mc_stall_cycles
             << ", \"error\": \"" << json_escape(c.error) << "\"}";
      }
      geo.push_back(geomean_guarded(ipc));
    }
    const double gain = geo[3] / geo[2] - 1.0;
    t.add_row({points[p].label, fmt(geo[0], 3), fmt(geo[1], 3),
               fmt(geo[2], 3), fmt(geo[3], 3), fmt_pct(gain)});
    summary << (p == 0 ? "" : ",\n") << "    {\"fabric\": \""
            << json_escape(points[p].label)
            << "\", \"ada_baseline_geo_ipc\": " << geo[2]
            << ", \"ada_ari_geo_ipc\": " << geo[3]
            << ", \"ari_gain\": " << gain << "}";
  }
  json << "\n  ],\n  \"summary\": [\n" << summary.str() << "\n  ],\n"
       << "  \"failures\": " << failures << "\n}\n";

  std::printf("%s\n", t.to_string().c_str());
  std::printf("shape check: ARI gain is positive on every fabric; the\n"
              "concentrated fabrics (cmesh, chiplet) funnel replies through\n"
              "fewer links, so their baselines sit deeper in saturation.\n");

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}
