// Figure 3: average request vs reply packet latency under the baseline.
// Paper: request latency ~5.6x reply latency on average although the
// congestion actually sits on the reply side (backpressure effect).
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 3 — Request vs. reply packet latency (XY-Baseline)",
                "request/reply latency ratio ~5.6x on average");
  const Config base = make_base_config();

  TextTable t({"benchmark", "req_lat", "reply_lat", "ratio"});
  std::vector<double> ratios;
  for (const auto& b : all_benchmark_names()) {
    const Metrics m = run_scheme(base, Scheme::kXYBaseline, b);
    const double ratio =
        m.reply_latency > 0.0 ? m.request_latency / m.reply_latency : 0.0;
    if (ratio > 0.0) ratios.push_back(ratio);
    t.add_row({b, fmt(m.request_latency, 1), fmt(m.reply_latency, 1),
               fmt(ratio, 2)});
  }
  t.add_row({"GEOMEAN", "", "", fmt(geomean(ratios), 2)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("paper reports the ratio ~5.6x; the shape claim is that the\n"
              "request network *looks* slower although the reply network is\n"
              "the congested one (verified by Fig. 4 and Fig. 13).\n");
  return 0;
}
