// Figure 16: ARI applied on top of DA2mesh.
// Paper: DA2mesh leaves the reply injection process untouched, so ARI
// composes with it for an additional ~16.4% IPC.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 16 — ARI on top of DA2mesh",
                "DA2mesh+ARI ~ +16.4% over plain DA2mesh");
  const Config base = make_base_config();

  TextTable t({"benchmark", "DA2Mesh", "DA2Mesh+ARI"});
  std::vector<double> gains;
  for (const auto& b : all_benchmark_names()) {
    const Metrics plain =
        run_scheme(base, Scheme::kAdaBaseline, b, nullptr, /*da2mesh=*/true);
    const Metrics ari =
        run_scheme(base, Scheme::kAdaARI, b, nullptr, /*da2mesh=*/true);
    gains.push_back(ari.ipc / plain.ipc);
    t.add_row({b, "1.000", fmt(ari.ipc / plain.ipc, 3)});
  }
  t.add_row({"GEOMEAN", "1.000", fmt(geomean(gains), 3)});
  std::printf("IPC normalized to plain DA2mesh\n%s\n", t.to_string().c_str());
  std::printf("paper: +16.4%% on average\n");
  return 0;
}
