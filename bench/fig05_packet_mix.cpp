// Figure 5: relative percentage of the four packet types, flit-weighted.
// Paper: the reply network carries ~72.7% of all NoC traffic (vs 27.3%),
// dominated by long read-reply packets.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 5 — Flit-weighted packet-type mix (XY-Baseline)",
                "reply network ~72.7% of traffic; read_reply dominates");
  const Config base = make_base_config();

  TextTable t({"benchmark", "read_req", "write_req", "read_reply",
               "write_reply", "reply_share"});
  double reply_share_sum = 0.0;
  int n = 0;
  for (const auto& b : all_benchmark_names()) {
    const Metrics m = run_scheme(base, Scheme::kXYBaseline, b);
    const double total = static_cast<double>(
        m.flits_by_type[0] + m.flits_by_type[1] + m.flits_by_type[2] +
        m.flits_by_type[3]);
    if (total == 0.0) continue;
    auto pct = [&](int i) {
      return static_cast<double>(m.flits_by_type[static_cast<std::size_t>(i)]) / total;
    };
    const double reply_share = pct(2) + pct(3);
    reply_share_sum += reply_share;
    ++n;
    t.add_row({b, fmt_pct(pct(0)), fmt_pct(pct(1)), fmt_pct(pct(2)),
               fmt_pct(pct(3)), fmt_pct(reply_share)});
  }
  t.add_row({"MEAN", "", "", "", "", fmt_pct(reply_share_sum / n)});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
