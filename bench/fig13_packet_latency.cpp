// Figure 13: average packet latency decomposed into request and reply
// parts, per scheme (reply latency includes the NI injection wait).
// Paper: ARI reduces reply latency as designed, and request latency drops
// too although ARI never touches the request network — confirming the
// bottleneck was on the reply side.
#include <map>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 13 — Packet latency split (request + reply)",
                "ARI cuts reply latency AND request latency (untouched "
                "request network) — backpressure removed at the source");
  const Config base = make_base_config();
  const std::vector<Scheme> schemes = {
      Scheme::kXYBaseline, Scheme::kXYARI, Scheme::kAdaBaseline,
      Scheme::kAdaMultiPort, Scheme::kAdaARI};

  std::vector<std::string> headers = {"benchmark"};
  for (Scheme s : schemes) {
    headers.push_back(std::string(scheme_name(s)) + " req+rep");
  }
  TextTable t(headers);

  std::map<int, std::vector<double>> totals;
  std::map<int, double> req_sums, rep_sums, rep_p99_sums;
  for (const auto& b : all_benchmark_names()) {
    std::vector<std::string> row = {b};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const Metrics m = run_scheme(base, schemes[s], b);
      totals[static_cast<int>(s)].push_back(m.request_latency +
                                            m.reply_latency);
      req_sums[static_cast<int>(s)] += m.request_latency;
      rep_sums[static_cast<int>(s)] += m.reply_latency;
      rep_p99_sums[static_cast<int>(s)] += m.reply_latency_p99;
      row.push_back(fmt(m.request_latency, 0) + "+" +
                    fmt(m.reply_latency, 0));
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());

  // ARI's tail-latency claim: the p99 column shows the backpressure fix
  // compresses the distribution, not just its mean.
  TextTable sum({"scheme", "mean req lat", "mean reply lat",
                 "mean reply p99", "total"});
  const double n = static_cast<double>(all_benchmark_names().size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    sum.add_row({scheme_name(schemes[s]),
                 fmt(req_sums[static_cast<int>(s)] / n, 1),
                 fmt(rep_sums[static_cast<int>(s)] / n, 1),
                 fmt(rep_p99_sums[static_cast<int>(s)] / n, 1),
                 fmt((req_sums[static_cast<int>(s)] +
                      rep_sums[static_cast<int>(s)]) / n, 1)});
  }
  std::printf("%s\n", sum.to_string().c_str());
  return 0;
}
