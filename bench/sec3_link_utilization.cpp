// Section 3 measurement: reply-network injection-link utilization vs
// in-network link utilization.
// Paper: injection links ~0.39 flit/cycle vs ~0.084 in-network (~4.5x) —
// the injection points, not the network core, are the bottleneck.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Section 3 — Reply injection vs in-network link utilization",
                "injection links ~4.5x hotter than in-network links "
                "(0.39 vs 0.084 flit/cycle)");
  const Config base = make_base_config();

  TextTable t({"benchmark", "inj_util", "internal_util", "ratio"});
  double inj_sum = 0, int_sum = 0;
  int n = 0;
  for (const auto& b : all_benchmark_names()) {
    const Metrics m = run_scheme(base, Scheme::kXYBaseline, b);
    const double ratio = m.reply_internal_util > 0.0
                             ? m.reply_injection_util / m.reply_internal_util
                             : 0.0;
    inj_sum += m.reply_injection_util;
    int_sum += m.reply_internal_util;
    ++n;
    t.add_row({b, fmt(m.reply_injection_util, 3),
               fmt(m.reply_internal_util, 3), fmt(ratio, 1)});
  }
  t.add_row({"MEAN", fmt(inj_sum / n, 3), fmt(int_sum / n, 3),
             fmt(int_sum > 0 ? inj_sum / int_sum : 0.0, 1)});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
