// google-benchmark microbenchmarks of the simulator primitives: router
// step throughput, allocator arbitration, cache and DRAM models, and a
// full-system cycle. These guard the simulator's own performance (the
// figure benches run ~300 full simulations).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "noc/arbiter.hpp"
#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "obs/trace.hpp"
#include "workloads/tracegen.hpp"

namespace {

using namespace arinoc;

void BM_RoundRobinArbiter(benchmark::State& state) {
  RoundRobinArbiter arb(16);
  std::vector<bool> req(16, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.pick(req));
  }
}
BENCHMARK(BM_RoundRobinArbiter);

void BM_PriorityArbiter(benchmark::State& state) {
  PriorityArbiter arb(16);
  std::vector<bool> req(16, true);
  std::vector<std::uint32_t> key(16);
  for (std::size_t i = 0; i < 16; ++i) key[i] = i % 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.pick(req, key));
  }
}
BENCHMARK(BM_PriorityArbiter);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(128 * 1024, 8, 64);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(1 << 20) * 64));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_DramTick(benchmark::State& state) {
  GddrDram dram(16, DramTimings{}, 64);
  Xoshiro256 rng(2);
  TxnId id = 0;
  for (auto _ : state) {
    if (dram.can_enqueue()) {
      dram.enqueue({id++, static_cast<std::uint32_t>(rng.next_below(16)),
                    rng.next_below(1000), false, 0});
    }
    dram.tick(false);
    benchmark::DoNotOptimize(dram.queue_depth());
    dram.drain_completed();
  }
}
BENCHMARK(BM_DramTick);

void BM_TraceGenNext(benchmark::State& state) {
  TraceGen gen(*find_benchmark("bfs"), 28, 24, 64, 1);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next(i % 28, i % 24));
    ++i;
  }
}
BENCHMARK(BM_TraceGenNext);

/// A saturated 6x6 reply network cycle (router pipeline + links).
void BM_NetworkStep(benchmark::State& state) {
  Mesh mesh(6, 6, 8);
  NetworkParams np;
  np.routing = RoutingAlgo::kMinAdaptive;
  Network net(np, &mesh);
  std::vector<std::unique_ptr<EnhancedInjectNi>> nis;
  for (NodeId mc : mesh.mc_nodes()) {
    nis.push_back(std::make_unique<EnhancedInjectNi>(&net, mc, 36));
  }
  Xoshiro256 rng(3);
  Cycle t = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < nis.size(); ++i) {
      const NodeId dst =
          mesh.cc_nodes()[rng.next_below(mesh.cc_nodes().size())];
      const PacketId id = net.make_packet(PacketType::kReadReply,
                                          mesh.mc_nodes()[i], dst, 0, 0, t);
      if (!nis[i]->try_accept(id, t)) net.abandon_packet(id);
      nis[i]->cycle(t);
    }
    net.step(t);
    ++t;
    // Drain ejection buffers so the network stays live.
    for (NodeId n = 0; n < 36; ++n) {
      Router& r = net.router(n);
      while (r.has_ejected_flit()) {
        const Flit f = r.pop_ejected_flit();
        if (f.tail) net.finish_packet(f.pkt, t);
      }
    }
  }
  state.counters["flits/cycle"] = benchmark::Counter(
      static_cast<double>(net.stats().total_flits()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkStep);

/// Raw cost of one trace-ring write (the per-event price every hook pays
/// when tracing is on).
void BM_TracerRecord(benchmark::State& state) {
  obs::PacketTracer tracer;
  Cycle t = 0;
  for (auto _ : state) {
    tracer.record(obs::TraceEventKind::kLinkHop, 0, t++, 42,
                  PacketType::kReadReply, 7, 1);
    benchmark::DoNotOptimize(tracer.size());
  }
}
BENCHMARK(BM_TracerRecord);

/// Full GPGPU system cycle (cores + both networks + MCs + DRAM).
void BM_FullSystemCycle(benchmark::State& state) {
  Config cfg = apply_scheme(Config{}, Scheme::kAdaARI);
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run(500);  // Warm structures.
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_FullSystemCycle);

/// The same cycle with the lifecycle tracer attached — compare against
/// BM_FullSystemCycle to see the observability tax when tracing is ON
/// (the OFF path is a null-pointer check and shows up as zero here).
void BM_FullSystemCycleTraced(benchmark::State& state) {
  Config cfg = apply_scheme(Config{}, Scheme::kAdaARI);
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  obs::PacketTracer tracer;
  sim.attach_tracer(&tracer);
  sim.run(500);  // Warm structures.
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_FullSystemCycleTraced);

}  // namespace

BENCHMARK_MAIN();
