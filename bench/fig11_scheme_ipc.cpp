// Figure 11: IPC of the five evaluated schemes, normalized to XY-Baseline.
// Paper: XY-ARI ~+8% over XY-Baseline; Ada-Baseline slightly *below*
// XY-Baseline; Ada-MultiPort ~+2% over Ada-Baseline; Ada-ARI ~+15.4% over
// Ada-Baseline, with ~1/3 of benchmarks near 1.4x.
#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace arinoc;
  const exec::ExecOptions opts = exec::require_exec_flags(argc, argv);
  bench::banner("Figure 11 — IPC by scheme (normalized to XY-Baseline)",
                "XY-ARI ~1.08x; Ada-Baseline <= 1.0x; Ada-MultiPort ~1.02x "
                "of Ada-Baseline; Ada-ARI ~1.154x of Ada-Baseline");
  const Config base = make_base_config();
  const std::vector<Scheme> schemes = {
      Scheme::kXYBaseline, Scheme::kXYARI, Scheme::kAdaBaseline,
      Scheme::kAdaMultiPort, Scheme::kAdaARI};
  const auto geos = bench::run_and_print_normalized(
      base, schemes, all_benchmark_names(), bench::ipc_of, "IPC", true, opts);
  std::printf("Ada-ARI vs Ada-Baseline: %.3fx (paper: ~1.154x)\n",
              geos[4] / geos[2]);
  std::printf("Ada-MultiPort vs Ada-Baseline: %.3fx (paper: ~1.02x)\n",
              geos[3] / geos[2]);
  std::printf("XY-ARI vs XY-Baseline: %.3fx (paper: ~1.08x)\n", geos[1]);
  return 0;
}
