// Section 6.1: ARI area overhead from the analytical model (substitute for
// the paper's Synopsys DC / NanGate 45nm / Cadence Encounter flow).
// Paper: ~5.4% per modified NI + MC-router pair; ~0.7% amortized over the
// whole network.
#include "bench_util.hpp"
#include "core/area_model.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Section 6.1 — ARI area overhead (analytical model)",
                "+5.4% per NI+MC-router pair, +0.7% amortized network-wide");
  const Config cfg = apply_scheme(make_base_config(), Scheme::kAdaARI);
  const AreaModel model;
  const AreaReport r = model.evaluate(cfg);

  TextTable t({"component", "baseline (um^2)", "ARI (um^2)", "delta"});
  t.add_row({"MC-router", fmt(r.baseline_router_um2, 0),
             fmt(r.ari_router_um2, 0),
             fmt_pct(r.ari_router_um2 / r.baseline_router_um2 - 1.0)});
  t.add_row({"MC reply NI", fmt(r.baseline_ni_um2, 0), fmt(r.ari_ni_um2, 0),
             fmt_pct(r.ari_ni_um2 / r.baseline_ni_um2 - 1.0)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("NI + MC-router pair overhead : %.1f%%  (paper: 5.4%%)\n",
              r.pair_overhead_pct);
  std::printf("amortized network overhead   : %.2f%% (paper: 0.7%%)\n",
              r.network_overhead_pct);
  std::printf("\nstructural deltas modeled: +%u crossbar input columns, "
              "split NI queues (+muxes), wide intra-tile links, %u narrow "
              "injection links\n",
              cfg.injection_speedup - 1, cfg.split_queues);
  return 0;
}
