// Figure 9: IPC improvement vs number of priority levels (bfs, mummergpu).
// Paper: two levels capture most of the benefit; more levels do not help
// (far from the injection point, differentiating in-network packets is
// useless).
#include <map>

#include "bench_util.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Figure 9 — IPC improvement vs # of priority levels",
                "2 levels reap most of the benefit (bfs, mummerGPU)");
  const Config base = make_base_config();

  std::vector<std::string> headers = {"levels"};
  for (const auto& b : fig9_benchmarks()) headers.push_back(b);
  TextTable t(headers);

  // Reference: full ARI minus prioritization (Acc-Both-NoPriority).
  std::map<std::string, double> ref;
  for (const auto& b : fig9_benchmarks()) {
    ref[b] = run_scheme(base, Scheme::kAccBothNoPrio, b).ipc;
  }
  for (std::uint32_t levels = 1; levels <= 6; ++levels) {
    std::vector<std::string> row = {std::to_string(levels)};
    for (const auto& b : fig9_benchmarks()) {
      const Metrics m = run_scheme(base, Scheme::kAdaARI, b,
                                   [&](Config& c) {
                                     c.priority_levels = levels;
                                   });
      row.push_back(fmt_pct(m.ipc / ref[b] - 1.0));
    }
    t.add_row(row);
  }
  std::printf("IPC improvement over Acc-Both-NoPriority\n%s\n",
              t.to_string().c_str());
  return 0;
}
