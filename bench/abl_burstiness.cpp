// Ablation: traffic burstiness (kernel phases). §4.1 motivates the wide
// MC->NI link with "multiple back-to-back ready data in consecutive
// cycles"; bursty workloads concentrate reply production into phases, so
// the baseline's 1-flit/cycle injection hurts more and ARI recovers more.
#include "bench_util.hpp"
#include "core/gpgpu_sim.hpp"

int main() {
  using namespace arinoc;
  bench::banner("Ablation — workload burstiness (kernel phases)",
                "burstier reply production => deeper injection bottleneck "
                "=> larger ARI gain");
  const Config base = make_base_config();

  BenchmarkTraits traits = *find_benchmark("srad");
  TextTable t({"burstiness", "Ada-Baseline IPC", "Ada-ARI IPC", "ARI gain",
               "base MC stall"});
  for (double b : {0.0, 0.3, 0.6, 0.9}) {
    traits.burstiness = b;
    auto run = [&](Scheme s) {
      GpgpuSim sim(apply_scheme(base, s), traits);
      sim.run_with_warmup();
      return sim.collect();
    };
    const Metrics m0 = run(Scheme::kAdaBaseline);
    const Metrics m1 = run(Scheme::kAdaARI);
    t.add_row({fmt(b, 1), fmt(m0.ipc, 3), fmt(m1.ipc, 3),
               fmt(m1.ipc / m0.ipc, 3) + "x",
               std::to_string(m0.mc_stall_cycles)});
  }
  std::printf("srad with phase-modulated memory intensity\n%s\n",
              t.to_string().c_str());
  return 0;
}
